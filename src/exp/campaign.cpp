#include "exp/campaign.hpp"

#include <fstream>
#include <limits>
#include <sstream>

#include "exp/json.hpp"
#include "online/policy.hpp"
#include "sim/runner.hpp"
#include "solver/registry.hpp"
#include "util/require.hpp"
#include "util/strings.hpp"

namespace cawo {

namespace {

std::vector<std::string> splitList(const std::string& value) {
  std::vector<std::string> items;
  for (const std::string& part : split(value, ',')) {
    const std::string item{trim(part)};
    if (!item.empty()) items.push_back(item);
  }
  return items;
}

std::string keyLabel(const std::string& key) {
  return "campaign key \"" + key + "\"";
}

int parseIntKey(const std::string& key, const std::string& token) {
  const std::int64_t v = parseInt64Strict(keyLabel(key), token);
  // Never truncate: a wrapped value would silently run a different
  // experiment than the one requested.
  CAWO_REQUIRE(v >= std::numeric_limits<int>::min() &&
                   v <= std::numeric_limits<int>::max(),
               keyLabel(key) + ": \"" + token + "\" is out of range");
  return static_cast<int>(v);
}

std::vector<std::string> nonEmptyList(const std::string& key,
                                      const std::string& value) {
  const std::vector<std::string> items = splitList(value);
  CAWO_REQUIRE(!items.empty(),
               "campaign key \"" + key +
                   "\" has an empty value — an empty axis would erase the "
                   "whole cross-product");
  return items;
}

} // namespace

std::size_t CampaignSpec::cellCount() const {
  std::size_t tasksAxis = 0;
  for (const WorkflowFamily family : families) {
    if (family == WorkflowFamily::Bacass && bacassTasks > 0) tasksAxis += 1;
    else tasksAxis += tasks.size();
  }
  return tasksAxis * nodesPerType.size() * seeds.size() * scenarios.size() *
         deadlineFactors.size();
}

void setCampaignKey(CampaignSpec& spec, const std::string& key,
                    const std::string& value) {
  if (key == "name") {
    const std::string trimmed{trim(value)};
    CAWO_REQUIRE(!trimmed.empty(), "campaign key \"name\" has an empty value");
    spec.name = trimmed;
  } else if (key == "families") {
    // Every list key parses into a local first, so a rejected value never
    // leaves the spec with a half-cleared axis.
    std::vector<WorkflowFamily> families;
    for (const std::string& item : nonEmptyList(key, value))
      families.push_back(familyFromName(item));
    spec.families = std::move(families);
  } else if (key == "tasks") {
    std::vector<int> tasks;
    for (const std::string& item : nonEmptyList(key, value)) {
      const int n = parseIntKey(key, item);
      CAWO_REQUIRE(n > 0, "campaign key \"tasks\": sizes must be positive");
      tasks.push_back(n);
    }
    spec.tasks = std::move(tasks);
  } else if (key == "bacass-tasks") {
    const int n = parseIntKey(key, std::string{trim(value)});
    CAWO_REQUIRE(n >= 0,
                 "campaign key \"bacass-tasks\" must be >= 0 (0 = use the "
                 "tasks axis)");
    spec.bacassTasks = n;
  } else if (key == "nodes-per-type") {
    std::vector<int> nodes;
    for (const std::string& item : nonEmptyList(key, value)) {
      const int n = parseIntKey(key, item);
      CAWO_REQUIRE(n > 0,
                   "campaign key \"nodes-per-type\": sizes must be positive");
      nodes.push_back(n);
    }
    spec.nodesPerType = std::move(nodes);
  } else if (key == "scenarios") {
    // Profile specs carry commas of their own ("sine:period=24,amp=0.5"),
    // so the axis splits with splitSpecList, not the plain comma split.
    std::vector<std::string> scenarios = splitSpecList(value);
    CAWO_REQUIRE(!scenarios.empty(),
                 "campaign key \"" + key +
                     "\" has an empty value — an empty axis would erase the "
                     "whole cross-product");
    if (scenarios.size() == 1 && scenarios[0] == "all") {
      scenarios = paperScenarioNames();
    } else {
      // Validate every spec now with a dry-run generation at a tiny
      // horizon: unknown sources, parameter typos, out-of-range values
      // and unreadable trace files all fail at campaign-parse time
      // instead of hours into a sweep. (A trace that is long enough for
      // this probe can still turn out too short for a real deadline —
      // that one case remains a run-time error.)
      const ProfileSourceRegistry& registry = ProfileSourceRegistry::global();
      for (const std::string& item : scenarios) {
        ProfileRequest probe;
        probe.horizon = 1;
        probe.sumIdle = 1;
        probe.sumWork = 1;
        (void)registry.generate(registry.resolve(item), probe);
      }
    }
    spec.scenarios = std::move(scenarios);
  } else if (key == "deadline-factors") {
    std::vector<double> factors;
    for (const std::string& item : nonEmptyList(key, value)) {
      const double f = parseDoubleStrict(keyLabel(key), item);
      CAWO_REQUIRE(f >= 1.0,
                   "campaign key \"deadline-factors\": factors below 1.0 are "
                   "infeasible by definition of D");
      factors.push_back(f);
    }
    spec.deadlineFactors = std::move(factors);
  } else if (key == "seeds") {
    std::vector<std::uint64_t> seeds;
    for (const std::string& item : nonEmptyList(key, value))
      seeds.push_back(parseUint64Strict(keyLabel(key), item));
    spec.seeds = std::move(seeds);
  } else if (key == "intervals") {
    const int intervals = parseIntKey(key, std::string{trim(value)});
    CAWO_REQUIRE(intervals > 0, "campaign key \"intervals\" must be positive");
    spec.numIntervals = intervals;
  } else if (key == "algos") {
    const std::string trimmed{trim(value)};
    CAWO_REQUIRE(!trimmed.empty(),
                 "campaign key \"algos\" has an empty value");
    spec.algos = trimmed;
  } else if (key == "threads") {
    const int t = parseIntKey(key, std::string{trim(value)});
    CAWO_REQUIRE(t >= 0, "campaign key \"threads\" must be >= 0");
    spec.threads = static_cast<unsigned>(t);
  } else if (key == "online") {
    const std::string v{trim(value)};
    CAWO_REQUIRE(v == "0" || v == "1" || v == "true" || v == "false",
                 "campaign key \"online\" must be 0/1/true/false");
    spec.online = v == "1" || v == "true";
  } else if (key == "actual") {
    const std::string v{trim(value)};
    if (v.empty()) {
      spec.actual.clear();
    } else {
      // Same dry-run probe as the scenarios axis: a bad actual spec must
      // fail at parse time, not mid-sweep.
      const ProfileSourceRegistry& registry = ProfileSourceRegistry::global();
      ProfileRequest probe;
      probe.horizon = 1;
      probe.sumIdle = 1;
      probe.sumWork = 1;
      (void)registry.generate(registry.resolve(v), probe);
      spec.actual = v;
    }
  } else if (key == "policies") {
    // Policy specs carry commas of their own ("periodic:every=4"), so the
    // axis splits with splitSpecList, like scenarios.
    const std::vector<std::string> policies = splitSpecList(value);
    CAWO_REQUIRE(!policies.empty(),
                 "campaign key \"policies\" has an empty value — an empty "
                 "axis would erase the whole online sweep");
    for (const std::string& item : policies)
      (void)ReschedulePolicyRegistry::global().resolve(item);
    spec.policies = policies;
  } else if (key == "runtime-noise") {
    const double a = parseDoubleStrict(keyLabel(key), std::string{trim(value)});
    CAWO_REQUIRE(a >= 0.0 && a < 1.0,
                 "campaign key \"runtime-noise\" must lie in [0, 1)");
    spec.runtimeNoise = a;
  } else {
    CAWO_REQUIRE(false,
                 "unknown campaign key \"" + key +
                     "\" (known: name, families, tasks, bacass-tasks, "
                     "nodes-per-type, scenarios, deadline-factors, seeds, "
                     "intervals, algos, threads, online, actual, policies, "
                     "runtime-noise)");
  }
}

namespace {

/// Apply one member of a JSON campaign object: scalars are stringified,
/// arrays are joined into the comma-list form, then routed through
/// `setCampaignKey` like every other input surface.
void setCampaignKeyJson(CampaignSpec& spec, const std::string& key,
                        const JsonValue& value) {
  auto scalarToString = [&](const JsonValue& v) -> std::string {
    switch (v.kind()) {
      case JsonValue::Kind::String: return v.asString();
      case JsonValue::Kind::Number:
        return v.isInteger() ? std::to_string(v.asInt())
                             : jsonNumber(v.asDouble());
      default:
        CAWO_REQUIRE(false, "campaign key \"" + key +
                                "\": expected a string, number or array");
        return {};
    }
  };
  if (value.kind() == JsonValue::Kind::Array) {
    std::string joined;
    for (const JsonValue& item : value.asArray()) {
      if (!joined.empty()) joined += ",";
      joined += scalarToString(item);
    }
    setCampaignKey(spec, key, joined);
  } else {
    setCampaignKey(spec, key, scalarToString(value));
  }
}

} // namespace

CampaignSpec parseCampaignText(const std::string& text) {
  CampaignSpec spec;
  const std::string_view body = trim(text);
  if (!body.empty() && body.front() == '{') {
    const JsonValue doc = JsonValue::parse(text);
    for (const std::string& key : doc.objectKeys())
      setCampaignKeyJson(spec, key, doc.at(key));
    return spec;
  }
  std::istringstream in(text);
  std::string line;
  int lineNo = 0;
  while (std::getline(in, line)) {
    ++lineNo;
    const std::string_view stripped = trim(line);
    if (stripped.empty() || stripped.front() == '#') continue;
    const auto eq = stripped.find('=');
    CAWO_REQUIRE(eq != std::string_view::npos,
                 "campaign file line " + std::to_string(lineNo) +
                     ": expected \"key = value\", got \"" + line + "\"");
    const std::string key{trim(stripped.substr(0, eq))};
    const std::string value{trim(stripped.substr(eq + 1))};
    CAWO_REQUIRE(!key.empty(), "campaign file line " + std::to_string(lineNo) +
                                   ": missing key before '='");
    setCampaignKey(spec, key, value);
  }
  return spec;
}

std::string canonicalCampaignSpecJson(const CampaignSpec& spec) {
  std::ostringstream out;
  JsonWriter w(out, /*indent=*/0);
  w.beginObject();
  w.key("name").value(spec.name);
  w.key("families");
  w.beginArray();
  for (const WorkflowFamily f : spec.families) w.value(familyName(f));
  w.endArray();
  w.key("tasks");
  w.beginArray();
  for (const int t : spec.tasks) w.value(t);
  w.endArray();
  w.key("bacass-tasks").value(spec.bacassTasks);
  w.key("nodes-per-type");
  w.beginArray();
  for (const int n : spec.nodesPerType) w.value(n);
  w.endArray();
  w.key("scenarios");
  w.beginArray();
  for (const std::string& s : spec.scenarios) w.value(s);
  w.endArray();
  w.key("deadline-factors");
  w.beginArray();
  for (const double f : spec.deadlineFactors) w.value(f);
  w.endArray();
  w.key("seeds");
  w.beginArray();
  for (const std::uint64_t s : spec.seeds) w.value(s);
  w.endArray();
  w.key("intervals").value(spec.numIntervals);
  w.key("algos").value(spec.algos);
  // The online block only appears when active, mirroring the result
  // header; "online" is written as 0/1 because the campaign-key JSON
  // surface stringifies scalars (booleans are not in its vocabulary).
  if (spec.online) {
    w.key("online").value(1);
    if (!spec.actual.empty()) w.key("actual").value(spec.actual);
    w.key("policies");
    w.beginArray();
    for (const std::string& p : spec.policies) w.value(p);
    w.endArray();
    w.key("runtime-noise").value(spec.runtimeNoise);
  }
  w.endObject();
  return out.str();
}

CampaignSpec parseCampaignFile(const std::string& path) {
  std::ifstream in(path);
  CAWO_REQUIRE(in.good(), "cannot open campaign file: " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return parseCampaignText(buffer.str());
}

std::vector<std::string> campaignSolverNames(const CampaignSpec& spec) {
  if (spec.algos == "suite") return suiteSolverNames();
  return SolverRegistry::global().select(spec.algos);
}

std::vector<std::string> campaignCellLabels(const CampaignSpec& spec) {
  const std::vector<std::string> solverNames = campaignSolverNames(spec);
  if (!spec.online) return solverNames;
  CAWO_REQUIRE(!spec.policies.empty(), "online campaign has no policies");
  std::vector<std::string> labels;
  labels.reserve(solverNames.size() * spec.policies.size());
  for (const std::string& solver : solverNames)
    for (const std::string& policy : spec.policies)
      labels.push_back(solver + " @ " + policy);
  return labels;
}

std::vector<InstanceSpec> expandCampaign(const CampaignSpec& spec) {
  CAWO_REQUIRE(!spec.families.empty() && !spec.tasks.empty() &&
                   !spec.nodesPerType.empty() && !spec.scenarios.empty() &&
                   !spec.deadlineFactors.empty() && !spec.seeds.empty(),
               "campaign has an empty axis");
  std::vector<InstanceSpec> specs;
  specs.reserve(spec.cellCount());
  for (const WorkflowFamily family : spec.families) {
    std::vector<int> taskAxis = spec.tasks;
    if (family == WorkflowFamily::Bacass && spec.bacassTasks > 0)
      taskAxis = {spec.bacassTasks};
    for (const int tasks : taskAxis) {
      for (const int cluster : spec.nodesPerType) {
        for (const std::uint64_t seed : spec.seeds) {
          for (const std::string& scenario : spec.scenarios) {
            for (const double factor : spec.deadlineFactors) {
              InstanceSpec cell;
              cell.family = family;
              cell.targetTasks = tasks;
              cell.nodesPerType = cluster;
              cell.scenario = scenario;
              cell.deadlineFactor = factor;
              cell.numIntervals = spec.numIntervals;
              cell.seed = seed;
              specs.push_back(cell);
            }
          }
        }
      }
    }
  }
  return specs;
}

} // namespace cawo
