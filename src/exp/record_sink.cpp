#include "exp/record_sink.hpp"

#include "util/require.hpp"

namespace cawo {

void MemoryRecordSink::appendInstance(std::size_t instanceIndex,
                                      const CampaignRecord* records,
                                      std::size_t count) {
  CAWO_REQUIRE(count == stride_,
               "MemoryRecordSink: cell group size does not match the "
               "campaign stride");
  CAWO_REQUIRE((instanceIndex + 1) * stride_ <= records_.size(),
               "MemoryRecordSink: instance index out of range");
  for (std::size_t s = 0; s < count; ++s)
    records_[instanceIndex * stride_ + s] = records[s];
}

} // namespace cawo
