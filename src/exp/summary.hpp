#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "exp/record.hpp"

/// \file summary.hpp
/// Streaming computation of the per-solver campaign summaries.
///
/// The legacy runner summarised a complete in-memory record vector in one
/// pass. `SummaryAccumulator` computes the identical aggregates one
/// instance cell-group at a time, so the result store can produce the
/// summary (and the final document) without ever materialising the record
/// set: the accumulator's state is O(cells) *doubles* (the ratio samples a
/// median inherently needs), not O(cells) records.
///
/// Bit-for-bit contract: feeding instance groups in expansion order
/// reproduces the legacy `summarise` output exactly — wins, counts, and
/// the order-sensitive floating-point accumulations (mean, wall-time sums)
/// all see the same values in the same sequence.

namespace cawo {

class SummaryAccumulator {
public:
  /// `solvers` are the campaign's per-instance cell labels; `scenarios`
  /// the distinct scenario specs (in document order) for the by-scenario
  /// medians.
  SummaryAccumulator(std::vector<std::string> solvers,
                     std::vector<std::string> scenarios);

  /// Add one instance's complete cell group (`count` == |solvers|),
  /// cell-major in label order. Call in instance expansion order for
  /// bit-identical summaries.
  void addInstance(const CampaignRecord* records, std::size_t count);

  /// The aggregated per-solver summaries (call once, after all groups).
  std::vector<SolverSummary> finish() const;

  const std::vector<std::string>& scenarios() const { return scenarios_; }

private:
  std::vector<std::string> solvers_;
  std::vector<std::string> scenarios_;
  std::vector<SolverSummary> partial_;  ///< instances/wins/wall so far
  std::vector<std::vector<double>> ratios_; ///< per solver, instance order
  /// ratiosByScenario_[solver][scenario]: the per-scenario ratio samples.
  std::vector<std::vector<std::vector<double>>> ratiosByScenario_;
};

} // namespace cawo
