#include "exp/summary.hpp"

#include <cmath>
#include <limits>

#include "sim/stats.hpp"
#include "util/require.hpp"

namespace cawo {

namespace {

double quietNaN() { return std::numeric_limits<double>::quiet_NaN(); }

} // namespace

SummaryAccumulator::SummaryAccumulator(std::vector<std::string> solvers,
                                       std::vector<std::string> scenarios)
    : solvers_(std::move(solvers)), scenarios_(std::move(scenarios)),
      partial_(solvers_.size()), ratios_(solvers_.size()),
      ratiosByScenario_(solvers_.size()) {
  for (std::size_t s = 0; s < solvers_.size(); ++s) {
    partial_[s].solver = solvers_[s];
    ratiosByScenario_[s].resize(scenarios_.size());
  }
}

void SummaryAccumulator::addInstance(const CampaignRecord* records,
                                     std::size_t count) {
  CAWO_REQUIRE(count == solvers_.size(),
               "SummaryAccumulator: cell group size does not match the "
               "solver label count");
  // Per-instance minimum over the cells that ran *feasibly* (for win
  // counting): an infeasible solve's cost is meaningless and must not
  // claim wins or drag the aggregates.
  Cost minCost = std::numeric_limits<Cost>::max();
  for (std::size_t s = 0; s < count; ++s) {
    const CampaignRecord& r = records[s];
    if (!r.skipped && r.feasible && r.cost < minCost) minCost = r.cost;
  }
  for (std::size_t s = 0; s < count; ++s) {
    const CampaignRecord& r = records[s];
    if (r.skipped) continue;
    SolverSummary& summary = partial_[s];
    ++summary.instances;
    summary.totalWallMs += r.wallMs;
    if (r.feasible && r.cost == minCost) ++summary.wins;
    if (!std::isnan(r.ratioVsBaseline)) {
      ratios_[s].push_back(r.ratioVsBaseline);
      for (std::size_t sc = 0; sc < scenarios_.size(); ++sc)
        if (scenarios_[sc] == r.spec.scenario)
          ratiosByScenario_[s][sc].push_back(r.ratioVsBaseline);
    }
  }
}

std::vector<SolverSummary> SummaryAccumulator::finish() const {
  std::vector<SolverSummary> summaries = partial_;
  for (std::size_t s = 0; s < summaries.size(); ++s) {
    SolverSummary& summary = summaries[s];
    summary.medianRatio =
        ratios_[s].empty() ? quietNaN() : medianOf(ratios_[s]);
    summary.meanRatio = ratios_[s].empty() ? quietNaN() : meanOf(ratios_[s]);
    summary.medianRatioByScenario.resize(scenarios_.size());
    for (std::size_t sc = 0; sc < scenarios_.size(); ++sc)
      summary.medianRatioByScenario[sc] =
          ratiosByScenario_[s][sc].empty()
              ? quietNaN()
              : medianOf(ratiosByScenario_[s][sc]);
  }
  return summaries;
}

} // namespace cawo
