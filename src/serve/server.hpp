#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "serve/context_cache.hpp"
#include "serve/protocol.hpp"
#include "solver/solver.hpp"
#include "util/parallel.hpp"

/// \file server.hpp
/// The transport-independent serve daemon core (see DESIGN.md,
/// "Scheduler-as-a-service").
///
/// `ServeServer` owns the admission queue + worker pool (`WorkerPool`) and
/// the `SolveContext` LRU cache (`ContextCache`), and turns one request
/// line into one response line. Transports (stdin/stdout, the TCP
/// listener — src/serve/transport.hpp) only move bytes: they feed lines to
/// `submitLine` with a callback that receives the response line whenever
/// it is ready. Cheap requests (`list`, `stats`, `shutdown`) are answered
/// inline on the submitting thread; `solve`/`replay` go through the
/// bounded queue and are answered from a worker thread — possibly out of
/// order, correlated by the echoed `id`.
///
/// Backpressure: when the queue is at capacity the request is rejected
/// immediately with error code "queue_full" — the daemon never blocks the
/// reader and never buffers unboundedly. Per-request deadlines
/// (`timeout_ms`) are enforced cooperatively: the deadline is checked when
/// a worker picks the job up and again after the (possibly slow) instance
/// acquisition, so an expired request is dropped with "timeout" before
/// the solve starts rather than preempted mid-solve.

namespace cawo {

/// Daemon configuration, shared by every transport.
struct ServeOptions {
  unsigned workers = 0;          ///< worker threads; 0 = hardware
  std::size_t queueCapacity = 64; ///< pending solve/replay jobs
  std::size_t cacheCapacity = 16; ///< cached SolveContext entries
  std::int64_t defaultTimeoutMs = 0; ///< for requests without timeout_ms
  std::size_t maxRequestBytes = 1 << 20;
  /// Baseline solver options merged under every request's "options" bag
  /// (the request wins on conflicts) — the CLI seeds block-size/ls-radius
  /// here so serve solves match single-run solves by default.
  SolverOptions solverDefaults;
  /// Test instrumentation: invoked on the worker thread at the start of
  /// every queued job, before the timeout check. Tests block here to pin
  /// queue_full / timeout behaviour deterministically. Null in production.
  std::function<void()> workerStartHook;
};

/// Aggregate daemon statistics — the `stats` request's `result` object.
struct ServeStats {
  std::int64_t received = 0;  ///< lines submitted (any kind)
  std::int64_t completed = 0; ///< solve/replay answered ok
  std::int64_t failed = 0;    ///< error responses (excl. the next two)
  std::int64_t rejectedQueueFull = 0;
  std::int64_t timeouts = 0;
  std::size_t queueDepth = 0;
  std::size_t queueCapacity = 0;
  unsigned workers = 0;
  std::size_t busy = 0;
  ContextCache::Counters cache;
  /// Completed solve/replay end-to-end latencies (queue wait + work).
  struct Latency {
    std::int64_t count = 0;
    double meanMs = 0.0;
    double p50Ms = 0.0;
    double p99Ms = 0.0;
    double p999Ms = 0.0;
    double maxMs = 0.0;
  } latency;

  // `detail:"full"` additions (obs layer; see docs/observability.md).
  // The wire response appends these after the byte-stable basic keys.
  Latency queueWait;                        ///< admission → pickup waits
  std::vector<double> latencyBoundsMs;      ///< histogram bucket bounds
  std::vector<std::int64_t> latencyBuckets; ///< bounds.size()+1 counts
  std::vector<std::int64_t> queueWaitBuckets;
};

/// The daemon core. Thread-safe: `submitLine` may be called from several
/// transport threads at once, and responders are invoked from worker
/// threads — a transport sharing one output stream must serialise its
/// responder itself.
class ServeServer {
public:
  /// One response line (no trailing newline), ready to ship.
  using Responder = std::function<void(const std::string&)>;

  explicit ServeServer(const ServeOptions& options);
  ~ServeServer();

  ServeServer(const ServeServer&) = delete;
  ServeServer& operator=(const ServeServer&) = delete;

  /// Process one request line. Always produces exactly one response
  /// through `respond` — inline for list/stats/shutdown and every
  /// rejection, from a worker thread for admitted solve/replay jobs.
  void submitLine(const std::string& line, Responder respond);

  /// A `shutdown` request was processed (or `requestStop` was called).
  bool stopping() const;
  /// Block until `stopping()` — transports park their accept loop here.
  void waitUntilStopping();
  /// Programmatic shutdown (SIGTERM handling, tests).
  void requestStop();

  /// Wait for every admitted job to finish (responses delivered).
  void drain();

  ServeStats stats() const;

private:
  using Clock = std::chrono::steady_clock;

  void runSolveJob(const ServeRequest& request, const Responder& respond,
                   Clock::time_point admitted, Clock::time_point deadline);
  void runReplayJob(const ServeRequest& request, const Responder& respond,
                    Clock::time_point admitted, Clock::time_point deadline);
  /// Checks the cooperative deadline; responds "timeout" and returns true
  /// when expired.
  bool expired(Clock::time_point deadline, const ServeRequest& request,
               const Responder& respond);
  SolverOptions mergedOptions(const SolverOptions& requestOptions) const;
  void respondError(const Responder& respond, const std::string& id,
                    const std::string& kind, const std::string& code,
                    const std::string& message);

  ServeOptions options_;
  RequestParser parser_;
  ContextCache cache_;
  WorkerPool pool_;

  mutable std::mutex statsMutex_;
  std::int64_t received_ = 0, completed_ = 0, failed_ = 0;
  std::int64_t rejectedQueueFull_ = 0, timeouts_ = 0;
  /// Exact-sample histograms (obs::Histogram) — the percentile values are
  /// byte-stable with the former hand-rolled nearest-rank code.
  obs::Histogram latency_;
  obs::Histogram queueWait_;

  mutable std::mutex stopMutex_;
  std::condition_variable stopCv_;
  bool stopping_ = false;
};

} // namespace cawo
