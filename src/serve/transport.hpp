#pragma once

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "serve/server.hpp"

/// \file transport.hpp
/// Byte movers for the serve daemon: both transports speak the same
/// newline-delimited `cawosched-serve-v1` protocol against one shared
/// `ServeServer` — a request line in, a response line out, responses
/// possibly out of order (correlated by `id`).
///
/// * `runStdioServe` pumps an istream/ostream pair (the CLI wires
///   stdin/stdout) on the calling thread until EOF or daemon shutdown.
/// * `TcpServeListener` accepts local TCP connections (127.0.0.1 only —
///   this is a workstation-local service, not a network daemon) and pumps
///   each on its own reader thread. Port 0 binds an ephemeral port;
///   `port()` reports the real one.
///
/// Both transports serialise their own output writes; blank input lines
/// are ignored (so interactive `netcat` sessions can add breathing room).

namespace cawo {

/// Read request lines from `in` until EOF or `server.stopping()`,
/// submitting each and writing responses (one per line) to `out`.
/// Before returning, drains the server so every response for a line read
/// here has been written — the caller can close the stream immediately.
void runStdioServe(ServeServer& server, std::istream& in, std::ostream& out);

/// Loopback TCP listener: binds 127.0.0.1:`port` in the constructor
/// (throws PreconditionError when the bind fails) and serves connections
/// on background threads until `stop()`/destruction.
class TcpServeListener {
public:
  TcpServeListener(ServeServer& server, std::uint16_t port);
  ~TcpServeListener();

  TcpServeListener(const TcpServeListener&) = delete;
  TcpServeListener& operator=(const TcpServeListener&) = delete;

  /// The bound port (the ephemeral one when constructed with port 0).
  std::uint16_t port() const { return port_; }

  /// Stop accepting, unblock and join every connection thread. Responses
  /// already handed to a connection are flushed; call `server.drain()`
  /// first if in-flight jobs must still deliver theirs. Idempotent.
  void stop();

private:
  /// One accepted connection: the fd plus a write lock. Responders hold a
  /// shared_ptr, so the fd outlives the reader thread until the last
  /// in-flight response is written (no fd-reuse hazard).
  struct Conn {
    explicit Conn(int f) : fd(f) {}
    ~Conn();
    int fd;
    std::mutex writeMutex;
  };
  using ConnPtr = std::shared_ptr<Conn>;

  static void writeLine(const ConnPtr& conn, const std::string& line);
  void acceptLoop();
  void connectionLoop(ConnPtr conn);

  ServeServer& server_;
  int listenFd_ = -1;
  std::uint16_t port_ = 0;
  std::atomic<bool> stopRequested_{false};
  std::thread acceptThread_;
  std::mutex connMutex_;
  std::vector<ConnPtr> conns_;
  std::vector<std::thread> connThreads_;
  bool stopped_ = false;
};

} // namespace cawo
