#pragma once

#include <string>
#include <vector>

/// \file listings.hpp
/// The one rendering of "what is registered here" shared by every
/// discovery surface: `cawosched-cli --list-algos` / `--list-scenarios` /
/// `replay --list-policies` print `text` verbatim, and the serve daemon's
/// `list` request returns the same `text` (plus the structured `names`)
/// in its response — one source, so the CLI and the wire can't drift.

namespace cawo {

struct Listing {
  std::vector<std::string> names; ///< registered names, canonical order
  std::string text;               ///< the full human listing (table + hint)
};

/// Every registered solver, with family/exact flags and the selection
/// grammar hint.
Listing algoListing();

/// Every registered profile source, with spec syntax and the noise hint.
Listing scenarioListing();

/// Every registered rescheduling policy, with spec syntax.
Listing policyListing();

/// The listing for a `list` request's `what` value ("algos", "scenarios"
/// or "policies"); throws PreconditionError on anything else.
Listing listingFor(const std::string& what);

} // namespace cawo
