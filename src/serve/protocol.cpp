#include "serve/protocol.hpp"

#include <cmath>
#include <sstream>

#include "util/require.hpp"
#include "workflow/generators.hpp"

namespace cawo {

namespace {

/// Typed field extraction with structured errors: every mismatch becomes
/// a "bad_request" naming the offending key, never an exception page.
[[noreturn]] void badRequest(const std::string& message) {
  throw ServeError("bad_request", message);
}

std::string asStringField(const JsonValue& v, const std::string& key) {
  if (v.kind() != JsonValue::Kind::String)
    badRequest("\"" + key + "\" must be a string");
  return v.asString();
}

std::int64_t asIntField(const JsonValue& v, const std::string& key) {
  if (!v.isInteger()) badRequest("\"" + key + "\" must be an integer");
  return v.asInt();
}

double asNumberField(const JsonValue& v, const std::string& key) {
  if (v.kind() != JsonValue::Kind::Number)
    badRequest("\"" + key + "\" must be a number");
  return v.asDouble();
}

bool asBoolField(const JsonValue& v, const std::string& key) {
  if (v.kind() != JsonValue::Kind::Bool)
    badRequest("\"" + key + "\" must be a boolean");
  return v.asBool();
}

/// The "options" object → the solver options bag. Integral numbers stay
/// integers ("block-size": 3), other numbers become doubles ("alpha":
/// 0.25), strings pass through verbatim.
SolverOptions parseOptionsBag(const JsonValue& v) {
  if (v.kind() != JsonValue::Kind::Object)
    badRequest("\"options\" must be an object");
  SolverOptions options;
  for (const std::string& key : v.objectKeys()) {
    const JsonValue& entry = v.at(key);
    switch (entry.kind()) {
      case JsonValue::Kind::String:
        options.set(key, entry.asString());
        break;
      case JsonValue::Kind::Number:
        if (entry.isInteger()) options.setInt(key, entry.asInt());
        else options.setDouble(key, entry.asDouble());
        break;
      default:
        badRequest("\"options." + key + "\" must be a string or number");
    }
  }
  return options;
}

ServeRequest::Kind kindFromName(const std::string& name) {
  if (name == "solve") return ServeRequest::Kind::Solve;
  if (name == "replay") return ServeRequest::Kind::Replay;
  if (name == "list") return ServeRequest::Kind::List;
  if (name == "stats") return ServeRequest::Kind::Stats;
  if (name == "shutdown") return ServeRequest::Kind::Shutdown;
  throw ServeError("unknown_kind",
                   "unknown request kind \"" + name +
                       "\" (valid: solve, replay, list, stats, shutdown)");
}

bool kindTakesInstance(ServeRequest::Kind kind) {
  return kind == ServeRequest::Kind::Solve ||
         kind == ServeRequest::Kind::Replay;
}

} // namespace

const char* serveKindName(ServeRequest::Kind kind) {
  switch (kind) {
    case ServeRequest::Kind::Solve: return "solve";
    case ServeRequest::Kind::Replay: return "replay";
    case ServeRequest::Kind::List: return "list";
    case ServeRequest::Kind::Stats: return "stats";
    case ServeRequest::Kind::Shutdown: return "shutdown";
  }
  return "?";
}

ServeRequest RequestParser::parse(const std::string& line) const {
  // Best-effort envelope recovery for error responses: once the document
  // parses, the id (and later the kind) is attached to whatever error the
  // strict pass throws, so clients can still correlate the failure.
  std::string errorId;
  std::string errorKind;
  try {
    return parseStrict(line, errorId, errorKind);
  } catch (ServeError& e) {
    e.attach(errorId, errorKind);
    throw;
  }
}

ServeRequest RequestParser::parseStrict(const std::string& line,
                                        std::string& errorId,
                                        std::string& errorKind) const {
  if (line.size() > maxRequestBytes_)
    throw ServeError("oversized",
                     "request line of " + std::to_string(line.size()) +
                         " bytes exceeds the " +
                         std::to_string(maxRequestBytes_) + "-byte cap");

  JsonValue doc;
  try {
    doc = JsonValue::parse(line);
  } catch (const std::exception& e) {
    throw ServeError("parse_error", e.what());
  }
  if (doc.kind() != JsonValue::Kind::Object)
    throw ServeError("parse_error", "request must be a JSON object");

  if (doc.has("id") && doc.at("id").kind() == JsonValue::Kind::String)
    errorId = doc.at("id").asString();

  // The kind is resolved first so key validation and error responses can
  // name the right request shape.
  ServeRequest request;
  if (doc.has("kind"))
    request.kind = kindFromName(asStringField(doc.at("kind"), "kind"));
  else
    throw ServeError("bad_request", "missing required key \"kind\"");
  if (doc.has("id")) request.id = asStringField(doc.at("id"), "id");

  const std::string kindName = serveKindName(request.kind);
  errorKind = kindName;
  for (const std::string& key : doc.objectKeys()) {
    const JsonValue& v = doc.at(key);
    // Envelope keys common to every kind.
    if (key == "kind" || key == "id") continue;
    if (key == "schema") {
      if (asStringField(v, key) != ResponseWriter::kSchema)
        badRequest("\"schema\" must be \"" +
                   std::string(ResponseWriter::kSchema) + "\"");
      continue;
    }
    if (key == "timeout_ms") {
      request.timeoutMs = asIntField(v, key);
      if (request.timeoutMs < 0) badRequest("\"timeout_ms\" must be >= 0");
      continue;
    }

    // Instance axes (solve + replay) — same vocabulary as the CLI flags.
    if (kindTakesInstance(request.kind)) {
      if (key == "family") {
        try {
          request.spec.family = familyFromName(asStringField(v, key));
        } catch (const PreconditionError& e) {
          badRequest(e.what());
        }
        continue;
      }
      if (key == "tasks") {
        request.spec.targetTasks = static_cast<int>(asIntField(v, key));
        if (request.spec.targetTasks < 1) badRequest("\"tasks\" must be >= 1");
        continue;
      }
      if (key == "nodes_per_type") {
        request.spec.nodesPerType = static_cast<int>(asIntField(v, key));
        if (request.spec.nodesPerType < 1)
          badRequest("\"nodes_per_type\" must be >= 1");
        continue;
      }
      if (key == "scenario") {
        request.spec.scenario = asStringField(v, key);
        continue;
      }
      if (key == "deadline_factor") {
        request.spec.deadlineFactor = asNumberField(v, key);
        if (!(request.spec.deadlineFactor >= 1.0))
          badRequest("\"deadline_factor\" must be >= 1.0");
        continue;
      }
      if (key == "seed") {
        request.spec.seed = static_cast<std::uint64_t>(asIntField(v, key));
        continue;
      }
      if (key == "intervals") {
        request.spec.numIntervals = static_cast<int>(asIntField(v, key));
        if (request.spec.numIntervals < 1)
          badRequest("\"intervals\" must be >= 1");
        continue;
      }
      if (key == "algo") {
        request.algo = asStringField(v, key);
        continue;
      }
      if (key == "options") {
        request.options = parseOptionsBag(v);
        continue;
      }
    }
    if (request.kind == ServeRequest::Kind::Solve &&
        key == "return_schedule") {
      request.returnSchedule = asBoolField(v, key);
      continue;
    }
    if (request.kind == ServeRequest::Kind::Replay) {
      if (key == "policy") {
        request.policy = asStringField(v, key);
        continue;
      }
      if (key == "actual") {
        request.actual = asStringField(v, key);
        continue;
      }
      if (key == "runtime_noise") {
        request.runtimeNoise = asNumberField(v, key);
        if (request.runtimeNoise < 0.0 || request.runtimeNoise >= 1.0)
          badRequest("\"runtime_noise\" must be in [0, 1)");
        continue;
      }
      if (key == "runtime_seed") {
        request.runtimeSeed = static_cast<std::uint64_t>(asIntField(v, key));
        continue;
      }
    }
    if (request.kind == ServeRequest::Kind::Stats && key == "detail") {
      request.detail = asStringField(v, key);
      if (!request.detail.empty() && request.detail != "full")
        badRequest("\"detail\" must be \"\" or \"full\"");
      continue;
    }
    if (request.kind == ServeRequest::Kind::List && key == "what") {
      request.what = asStringField(v, key);
      if (request.what != "algos" && request.what != "scenarios" &&
          request.what != "policies")
        badRequest("\"what\" must be \"algos\", \"scenarios\" or "
                   "\"policies\"");
      continue;
    }

    // Mirroring the CLI's unknown-flag policy: a typo'd key must fail
    // loudly, not silently run a different experiment.
    badRequest("unknown key \"" + key + "\" for kind \"" + kindName + "\"");
  }

  return request;
}

std::string ResponseWriter::ok(
    const std::function<void(JsonWriter&)>& fillResult) const {
  std::ostringstream out;
  JsonWriter w(out, 0);
  w.beginObject();
  w.key("schema").value(kSchema);
  w.key("id").value(id_);
  w.key("kind").value(kind_);
  w.key("ok").value(true);
  w.key("error").value("");
  w.key("result");
  w.beginObject();
  if (fillResult) fillResult(w);
  w.endObject();
  w.endObject();
  return out.str();
}

std::string ResponseWriter::error(const std::string& code,
                                  const std::string& message) const {
  CAWO_ASSERT(!code.empty(), "serve error responses need a nonzero code");
  std::ostringstream out;
  JsonWriter w(out, 0);
  w.beginObject();
  w.key("schema").value(kSchema);
  w.key("id").value(id_);
  w.key("kind").value(kind_);
  w.key("ok").value(false);
  w.key("error").value(code);
  w.key("message").value(message);
  w.key("result");
  w.null();
  w.endObject();
  return out.str();
}

} // namespace cawo
