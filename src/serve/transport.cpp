#include "serve/transport.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <istream>
#include <ostream>
#include <string>

#include "util/require.hpp"

namespace cawo {

namespace {

bool blankLine(const std::string& line) {
  for (const char c : line)
    if (c != ' ' && c != '\t' && c != '\r') return false;
  return true;
}

} // namespace

void runStdioServe(ServeServer& server, std::istream& in, std::ostream& out) {
  // Workers respond concurrently; one mutex keeps response lines whole.
  std::mutex outMutex;
  std::string line;
  while (!server.stopping() && std::getline(in, line)) {
    if (blankLine(line)) continue;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    server.submitLine(line, [&outMutex, &out](const std::string& response) {
      const std::scoped_lock lock(outMutex);
      out << response << '\n' << std::flush;
    });
  }
  // The responders above borrow this frame's stream and mutex — every
  // admitted job must finish before they go out of scope.
  server.drain();
}

TcpServeListener::Conn::~Conn() { ::close(fd); }

TcpServeListener::TcpServeListener(ServeServer& server, std::uint16_t port)
    : server_(server) {
  listenFd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  CAWO_REQUIRE(listenFd_ >= 0,
               std::string("cannot create socket: ") + std::strerror(errno));
  const int one = 1;
  ::setsockopt(listenFd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(listenFd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    const std::string why = std::strerror(errno);
    ::close(listenFd_);
    listenFd_ = -1;
    CAWO_REQUIRE(false, "cannot bind 127.0.0.1:" + std::to_string(port) +
                            ": " + why);
  }
  if (::listen(listenFd_, 64) != 0) {
    const std::string why = std::strerror(errno);
    ::close(listenFd_);
    listenFd_ = -1;
    CAWO_REQUIRE(false, "cannot listen on 127.0.0.1:" +
                            std::to_string(port) + ": " + why);
  }

  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  CAWO_REQUIRE(::getsockname(listenFd_,
                             reinterpret_cast<sockaddr*>(&bound), &len) == 0,
               std::string("getsockname failed: ") + std::strerror(errno));
  port_ = ntohs(bound.sin_port);

  acceptThread_ = std::thread([this] { acceptLoop(); });
}

TcpServeListener::~TcpServeListener() { stop(); }

void TcpServeListener::stop() {
  {
    const std::scoped_lock lock(connMutex_);
    if (stopped_) return;
    stopped_ = true;
  }
  stopRequested_.store(true);
  if (acceptThread_.joinable()) acceptThread_.join();
  if (listenFd_ >= 0) {
    ::close(listenFd_);
    listenFd_ = -1;
  }
  // Unblock every reader stuck in recv, then join. The fds stay open
  // until the last responder drops its ConnPtr.
  {
    const std::scoped_lock lock(connMutex_);
    for (const ConnPtr& conn : conns_) ::shutdown(conn->fd, SHUT_RDWR);
  }
  for (std::thread& t : connThreads_) t.join();
  connThreads_.clear();
  conns_.clear();
}

void TcpServeListener::writeLine(const ConnPtr& conn,
                                 const std::string& line) {
  const std::scoped_lock lock(conn->writeMutex);
  std::string payload = line;
  payload.push_back('\n');
  const char* data = payload.data();
  std::size_t left = payload.size();
  while (left > 0) {
    const ssize_t n = ::send(conn->fd, data, left, MSG_NOSIGNAL);
    if (n <= 0) return; // peer gone — the response is undeliverable
    data += static_cast<std::size_t>(n);
    left -= static_cast<std::size_t>(n);
  }
}

void TcpServeListener::acceptLoop() {
  // Poll with a short timeout so stop() never races a blocked accept.
  while (!stopRequested_.load()) {
    pollfd pfd{};
    pfd.fd = listenFd_;
    pfd.events = POLLIN;
    const int ready = ::poll(&pfd, 1, 100);
    if (ready <= 0) continue;
    const int fd = ::accept(listenFd_, nullptr, nullptr);
    if (fd < 0) continue;
    auto conn = std::make_shared<Conn>(fd);
    const std::scoped_lock lock(connMutex_);
    if (stopped_) {
      ::shutdown(fd, SHUT_RDWR);
      continue; // conn's destructor closes the fd
    }
    conns_.push_back(conn);
    connThreads_.emplace_back(
        [this, conn = std::move(conn)] { connectionLoop(conn); });
  }
}

void TcpServeListener::connectionLoop(ConnPtr conn) {
  std::string buffer;
  char chunk[4096];
  for (;;) {
    const ssize_t n = ::recv(conn->fd, chunk, sizeof(chunk), 0);
    if (n <= 0) break; // EOF, error, or stop()'s shutdown
    buffer.append(chunk, static_cast<std::size_t>(n));
    std::size_t eol;
    while ((eol = buffer.find('\n')) != std::string::npos) {
      std::string line = buffer.substr(0, eol);
      buffer.erase(0, eol + 1);
      if (!line.empty() && line.back() == '\r') line.pop_back();
      if (blankLine(line)) continue;
      server_.submitLine(line, [conn](const std::string& response) {
        writeLine(conn, response);
      });
    }
  }
}

} // namespace cawo
