#include "serve/context_cache.hpp"

#include "core/instance_hash.hpp"
#include "exp/json.hpp"
#include "util/require.hpp"
#include "workflow/generators.hpp"

namespace cawo {

ContextCache::ContextCache(std::size_t capacity) : capacity_(capacity) {}

std::string ContextCache::specKey(const InstanceSpec& spec) {
  // jsonNumber keeps the deadline factor round-trip exact, so two specs
  // differing in any representable factor get distinct keys.
  return std::string(familyName(spec.family)) + "|" +
         std::to_string(spec.targetTasks) + "|" +
         std::to_string(spec.nodesPerType) + "|" + spec.scenario + "|" +
         jsonNumber(spec.deadlineFactor) + "|" +
         std::to_string(spec.numIntervals) + "|" +
         std::to_string(spec.seed);
}

ContextCache::EntryPtr ContextCache::acquire(const InstanceSpec& spec,
                                             bool* cacheHit) {
  const std::string key = specKey(spec);
  {
    const std::scoped_lock lock(mutex_);
    const auto it = bySpec_.find(key);
    if (it != bySpec_.end()) {
      const auto entryIt = byHash_.find(it->second);
      CAWO_ASSERT(entryIt != byHash_.end(),
                  "spec alias points at an evicted cache entry");
      touch(it->second);
      ++hits_;
      if (cacheHit) *cacheHit = true;
      return entryIt->second;
    }
    ++misses_;
  }
  if (cacheHit) *cacheHit = false;

  // Build outside the lock: a slow first build must not stall hits on
  // other instances. Two racing first requests both build; the insert
  // below resolves the race in favour of whoever got there first.
  auto entry = std::make_shared<Entry>(buildInstance(spec));
  entry->hash = instanceHash(entry->instance.gc, entry->instance.profile,
                             entry->instance.deadline);

  if (capacity_ == 0) return entry; // caching disabled — nothing retained

  const std::scoped_lock lock(mutex_);
  const auto raced = bySpec_.find(key);
  if (raced != bySpec_.end()) {
    // Another thread built and inserted this spec meanwhile — share its
    // entry so every worker serialises on the same context mutex.
    touch(raced->second);
    return byHash_.at(raced->second);
  }
  const auto sameHash = byHash_.find(entry->hash);
  if (sameHash != byHash_.end()) {
    // A different spec expanded to the same canonical instance: alias it.
    bySpec_.emplace(key, entry->hash);
    touch(entry->hash);
    return sameHash->second;
  }
  byHash_.emplace(entry->hash, entry);
  lru_.push_front(entry->hash);
  lruPos_[entry->hash] = lru_.begin();
  bySpec_.emplace(key, entry->hash);
  evictIfOver();
  return entry;
}

ContextCache::Counters ContextCache::counters() const {
  const std::scoped_lock lock(mutex_);
  Counters c;
  c.hits = hits_;
  c.misses = misses_;
  c.evictions = evictions_;
  c.size = byHash_.size();
  c.capacity = capacity_;
  return c;
}

void ContextCache::touch(std::uint64_t hash) {
  const auto pos = lruPos_.find(hash);
  CAWO_ASSERT(pos != lruPos_.end(), "LRU position missing for cache entry");
  lru_.splice(lru_.begin(), lru_, pos->second);
  pos->second = lru_.begin();
}

void ContextCache::evictIfOver() {
  while (byHash_.size() > capacity_) {
    const std::uint64_t victim = lru_.back();
    lru_.pop_back();
    lruPos_.erase(victim);
    byHash_.erase(victim);
    for (auto it = bySpec_.begin(); it != bySpec_.end();) {
      if (it->second == victim) it = bySpec_.erase(it);
      else ++it;
    }
    ++evictions_;
  }
}

} // namespace cawo
