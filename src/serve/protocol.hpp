#pragma once

#include <cstdint>
#include <functional>
#include <stdexcept>
#include <string>

#include "exp/json.hpp"
#include "sim/instance.hpp"
#include "solver/solver.hpp"

/// \file protocol.hpp
/// The `cawosched-serve-v1` wire layer (see docs/formats.md, "Serve wire
/// protocol").
///
/// The daemon speaks newline-delimited JSON: one request object per line
/// in, one response object per line out, over stdin/stdout and/or a local
/// TCP socket — the same bytes either way. `RequestParser` turns a raw
/// line into a typed `ServeRequest` (rejecting oversized, malformed,
/// unknown-kind and unknown-key input with a structured `ServeError`),
/// `ResponseWriter` produces the single-line response documents. Both
/// reuse `exp/json`, so number formatting and escaping match every other
/// machine-readable surface of the repository.
///
/// Responses are correlated by the client-chosen `id` (echoed verbatim) —
/// the daemon answers out of order when a later request finishes first.

namespace cawo {

/// Structured protocol failure: a stable machine-readable `code` (the
/// response's `error` field — never empty) plus a human message. The
/// parser attaches the request's `id`/`kind` when it got far enough to
/// know them, so even error responses correlate.
class ServeError : public std::runtime_error {
public:
  ServeError(std::string code, const std::string& message)
      : std::runtime_error(message), code_(std::move(code)) {}

  const std::string& code() const { return code_; }

  void attach(std::string id, std::string kind) {
    id_ = std::move(id);
    kind_ = std::move(kind);
  }
  const std::string& requestId() const { return id_; }
  /// "" when the failure happened before the kind was known.
  const std::string& requestKind() const { return kind_; }

private:
  std::string code_;
  std::string id_;
  std::string kind_;
};

/// One parsed request. Defaults mirror the CLI surfaces: an empty
/// `{"kind":"solve"}` solves the CLI's default instance with the paper's
/// strongest variant.
struct ServeRequest {
  enum class Kind { Solve, Replay, List, Stats, Shutdown };

  Kind kind = Kind::Solve;
  std::string id;              ///< echoed verbatim; "" when absent
  std::int64_t timeoutMs = 0;  ///< per-request deadline; 0 = none

  // solve + replay: the instance axes (same meaning as `cawosched-cli`).
  InstanceSpec spec;
  std::string algo = "pressWR-LS";
  SolverOptions options;       ///< "options" object: block-size, alpha, …
  bool returnSchedule = false; ///< solve: include per-node start times

  // replay only.
  std::string policy = "static";
  std::string actual;          ///< actual-profile spec; "" = noise pair
  double runtimeNoise = 0.0;
  std::uint64_t runtimeSeed = 1;

  // list only: "algos" | "scenarios" | "policies".
  std::string what = "algos";

  // stats only: "" (the byte-stable basic block) or "full" (appends the
  // obs-layer extras — queue-wait percentiles and latency histograms; see
  // docs/observability.md).
  std::string detail;
};

const char* serveKindName(ServeRequest::Kind kind);

/// Parses `cawosched-serve-v1` request lines. Stateless; one instance can
/// serve every connection.
class RequestParser {
public:
  /// Byte cap on one request line; longer input is rejected with code
  /// "oversized" *before* parsing (a malicious line must not balloon the
  /// parser).
  explicit RequestParser(std::size_t maxRequestBytes = 1 << 20)
      : maxRequestBytes_(maxRequestBytes) {}

  /// Parse one raw line into a typed request. Throws `ServeError` with
  /// code "oversized", "parse_error", "unknown_kind" or "bad_request"
  /// (unknown keys, wrong value types, out-of-range axes). Never crashes
  /// on hostile input.
  ServeRequest parse(const std::string& line) const;

private:
  ServeRequest parseStrict(const std::string& line, std::string& errorId,
                           std::string& errorKind) const;

  std::size_t maxRequestBytes_;
};

/// Builds the single-line response documents. One writer per request —
/// it pins the envelope (schema, echoed id, kind, ok, error) so every
/// response, success or failure, has the same shape.
class ResponseWriter {
public:
  ResponseWriter(std::string id, std::string kind)
      : id_(std::move(id)), kind_(std::move(kind)) {}

  /// A success response; `fillResult` writes the members of the `result`
  /// object (may be empty).
  std::string ok(const std::function<void(JsonWriter&)>& fillResult) const;

  /// A failure response: `error` carries the machine-readable code,
  /// `message` the human detail, `result` is null.
  std::string error(const std::string& code,
                    const std::string& message) const;

  static constexpr const char* kSchema = "cawosched-serve-v1";

private:
  std::string id_;
  std::string kind_;
};

} // namespace cawo
