#include "serve/server.hpp"

#include <algorithm>
#include <utility>

#include "core/instance_hash.hpp"
#include "obs/trace.hpp"
#include "online/policy.hpp"
#include "online/replay.hpp"
#include "online/result_json.hpp"
#include "serve/listings.hpp"
#include "solver/registry.hpp"
#include "util/require.hpp"

namespace cawo {

namespace {

double millisBetween(std::chrono::steady_clock::time_point from,
                     std::chrono::steady_clock::time_point to) {
  return std::chrono::duration<double, std::milli>(to - from).count();
}

/// Fill one ServeStats::Latency block from an obs::Histogram. The
/// nearest-rank percentiles are byte-stable with the hand-rolled code
/// this replaced (Histogram pins the same formula).
void fillLatency(const obs::Histogram& h, ServeStats::Latency& out) {
  out.count = h.count();
  if (out.count == 0) return;
  out.meanMs = h.mean();
  out.p50Ms = h.percentile(0.50);
  out.p99Ms = h.percentile(0.99);
  out.p999Ms = h.percentile(0.999);
  out.maxMs = h.max();
}

/// Record the per-request span tree once a job is fully answered:
/// `serve.request` spans admission → respond, with `serve.queue_wait`
/// (admission → pickup) as its first child. Both go on a per-request
/// nestable-async track: a request's queue time overlaps whatever the
/// worker lane was doing for other requests, so thread-lane complete
/// events cannot represent it. The handling window (pickup → respond)
/// additionally gets a `serve.handle` span on the worker lane, parenting
/// the cache-acquire / solve / respond child spans recorded inline.
void recordRequestSpans(const ServeRequest& request, const char* kind,
                        std::chrono::steady_clock::time_point admitted,
                        std::chrono::steady_clock::time_point pickedUp) {
  if (!obs::traceRecording()) return;
  const auto finished = std::chrono::steady_clock::now();
  static std::atomic<std::uint64_t> nextTrack{1};
  const std::uint64_t track =
      nextTrack.fetch_add(1, std::memory_order_relaxed);
  std::vector<obs::TraceArg> args;
  args.push_back(obs::TraceArg{"id", request.id, true});
  args.push_back(obs::TraceArg{"kind", kind, true});
  args.push_back(obs::TraceArg{"solver", request.algo, true});
  obs::traceAsyncSpanBetween("serve.request", track, admitted, finished,
                             std::move(args));
  obs::traceAsyncSpanBetween("serve.queue_wait", track, admitted, pickedUp);
  obs::traceSpanBetween("serve.handle", pickedUp, finished);
}

} // namespace

ServeServer::ServeServer(const ServeOptions& options)
    : options_(options),
      parser_(options.maxRequestBytes),
      cache_(options.cacheCapacity),
      pool_(options.workers, options.queueCapacity) {}

ServeServer::~ServeServer() {
  // Stop the pool while every member the jobs touch is still alive.
  pool_.stop();
}

void ServeServer::submitLine(const std::string& line, Responder respond) {
  {
    const std::scoped_lock lock(statsMutex_);
    ++received_;
  }

  ServeRequest request;
  try {
    request = parser_.parse(line);
  } catch (const ServeError& e) {
    respondError(respond, e.requestId(), e.requestKind(), e.code(),
                 e.what());
    return;
  }

  const std::string kindName = serveKindName(request.kind);
  switch (request.kind) {
    case ServeRequest::Kind::List: {
      Listing listing;
      try {
        listing = listingFor(request.what);
      } catch (const PreconditionError& e) {
        respondError(respond, request.id, kindName, "bad_request", e.what());
        return;
      }
      const ResponseWriter writer(request.id, kindName);
      respond(writer.ok([&](JsonWriter& w) {
        w.key("what").value(request.what);
        w.key("names");
        w.beginArray();
        for (const std::string& name : listing.names) w.value(name);
        w.endArray();
        w.key("text").value(listing.text);
      }));
      return;
    }

    case ServeRequest::Kind::Stats: {
      const ServeStats s = stats();
      const ResponseWriter writer(request.id, kindName);
      respond(writer.ok([&](JsonWriter& w) {
        w.key("received").value(s.received);
        w.key("completed").value(s.completed);
        w.key("failed").value(s.failed);
        w.key("rejected_queue_full").value(s.rejectedQueueFull);
        w.key("timeouts").value(s.timeouts);
        w.key("queue_depth")
            .value(static_cast<std::int64_t>(s.queueDepth));
        w.key("queue_capacity")
            .value(static_cast<std::int64_t>(s.queueCapacity));
        w.key("workers").value(static_cast<std::int64_t>(s.workers));
        w.key("busy").value(static_cast<std::int64_t>(s.busy));
        w.key("cache_hits").value(s.cache.hits);
        w.key("cache_misses").value(s.cache.misses);
        w.key("cache_evictions").value(s.cache.evictions);
        w.key("cache_size").value(static_cast<std::int64_t>(s.cache.size));
        w.key("cache_capacity")
            .value(static_cast<std::int64_t>(s.cache.capacity));
        w.key("latency");
        w.beginObject();
        w.key("count").value(s.latency.count);
        w.key("mean_ms").value(s.latency.meanMs);
        w.key("p50_ms").value(s.latency.p50Ms);
        w.key("p99_ms").value(s.latency.p99Ms);
        w.key("p999_ms").value(s.latency.p999Ms);
        w.key("max_ms").value(s.latency.maxMs);
        w.endObject();
        // Everything above is byte-stable; detail:"full" only appends.
        if (request.detail == "full") {
          w.key("queue_wait");
          w.beginObject();
          w.key("count").value(s.queueWait.count);
          w.key("mean_ms").value(s.queueWait.meanMs);
          w.key("p50_ms").value(s.queueWait.p50Ms);
          w.key("p99_ms").value(s.queueWait.p99Ms);
          w.key("p999_ms").value(s.queueWait.p999Ms);
          w.key("max_ms").value(s.queueWait.maxMs);
          w.endObject();
          w.key("latency_histogram");
          w.beginObject();
          w.key("bounds_ms");
          w.beginArray();
          for (const double b : s.latencyBoundsMs) w.value(b);
          w.endArray();
          w.key("counts");
          w.beginArray();
          for (const std::int64_t c : s.latencyBuckets) w.value(c);
          w.endArray();
          w.endObject();
          w.key("queue_wait_histogram");
          w.beginObject();
          w.key("bounds_ms");
          w.beginArray();
          for (const double b : s.latencyBoundsMs) w.value(b);
          w.endArray();
          w.key("counts");
          w.beginArray();
          for (const std::int64_t c : s.queueWaitBuckets) w.value(c);
          w.endArray();
          w.endObject();
        }
      }));
      return;
    }

    case ServeRequest::Kind::Shutdown: {
      const ResponseWriter writer(request.id, kindName);
      respond(writer.ok(
          [&](JsonWriter& w) { w.key("stopping").value(true); }));
      requestStop();
      return;
    }

    case ServeRequest::Kind::Solve:
    case ServeRequest::Kind::Replay:
      break;
  }

  if (stopping()) {
    respondError(respond, request.id, kindName, "shutting_down",
                 "the daemon is shutting down and admits no new work");
    return;
  }

  const Clock::time_point admitted = Clock::now();
  const std::int64_t timeoutMs =
      request.timeoutMs > 0 ? request.timeoutMs : options_.defaultTimeoutMs;
  const Clock::time_point deadline =
      timeoutMs > 0 ? admitted + std::chrono::milliseconds(timeoutMs)
                    : Clock::time_point::max();

  // The job captures copies so the rejection path below still has the
  // originals to build its error response from.
  const bool queued = pool_.trySubmit(
      [this, request, respond, admitted, deadline]() {
        if (options_.workerStartHook) options_.workerStartHook();
        if (request.kind == ServeRequest::Kind::Solve)
          runSolveJob(request, respond, admitted, deadline);
        else
          runReplayJob(request, respond, admitted, deadline);
      });
  if (!queued) {
    respondError(respond, request.id, kindName, "queue_full",
                 "admission queue is at capacity (" +
                     std::to_string(options_.queueCapacity) +
                     " pending jobs) — retry later");
  }
}

bool ServeServer::stopping() const {
  const std::scoped_lock lock(stopMutex_);
  return stopping_;
}

void ServeServer::waitUntilStopping() {
  std::unique_lock lock(stopMutex_);
  stopCv_.wait(lock, [this] { return stopping_; });
}

void ServeServer::requestStop() {
  {
    const std::scoped_lock lock(stopMutex_);
    stopping_ = true;
  }
  stopCv_.notify_all();
}

void ServeServer::drain() { pool_.drain(); }

ServeStats ServeServer::stats() const {
  ServeStats s;
  {
    const std::scoped_lock lock(statsMutex_);
    s.received = received_;
    s.completed = completed_;
    s.failed = failed_;
    s.rejectedQueueFull = rejectedQueueFull_;
    s.timeouts = timeouts_;
    fillLatency(latency_, s.latency);
    fillLatency(queueWait_, s.queueWait);
    s.latencyBoundsMs = latency_.bucketBounds();
    s.latencyBuckets = latency_.bucketCounts();
    s.queueWaitBuckets = queueWait_.bucketCounts();
  }
  s.queueDepth = pool_.queueDepth();
  s.queueCapacity = options_.queueCapacity;
  s.workers = pool_.threads();
  s.busy = pool_.busy();
  s.cache = cache_.counters();
  return s;
}

void ServeServer::runSolveJob(const ServeRequest& request,
                              const Responder& respond,
                              Clock::time_point admitted,
                              Clock::time_point deadline) {
  const Clock::time_point pickedUp = Clock::now();
  if (obs::traceRecording()) obs::traceSetThreadName("serve-worker");
  if (expired(deadline, request, respond)) return;

  bool cacheHit = false;
  ContextCache::EntryPtr entry;
  try {
    obs::TraceScope acquireSpan("serve.cache_acquire");
    entry = cache_.acquire(request.spec, &cacheHit);
    if (acquireSpan.recording())
      acquireSpan.arg("hit", static_cast<std::int64_t>(cacheHit));
  } catch (const std::exception& e) {
    respondError(respond, request.id, "solve", "bad_request", e.what());
    return;
  }
  if (expired(deadline, request, respond)) return;

  SolverPtr solver;
  try {
    solver = SolverRegistry::global().create(request.algo);
  } catch (const PreconditionError& e) {
    respondError(respond, request.id, "solve", "bad_request", e.what());
    return;
  }

  SolveResult result;
  {
    // The cached SolveContext is not thread-safe — one solve at a time
    // per entry; different entries solve concurrently. Intra-solve
    // parallelism (the `threads` solver option) is safe under this lock:
    // the parallel kernels never touch the context's lazy caches (see
    // SolveContext's concurrency contract).
    const std::scoped_lock entryLock(entry->mutex);
    SolveRequest solveRequest;
    solveRequest.gc = &entry->instance.gc;
    solveRequest.profile = &entry->instance.profile;
    solveRequest.deadline = entry->instance.deadline;
    solveRequest.graph = &entry->instance.graph;
    solveRequest.platform = &entry->instance.platform;
    solveRequest.context = &entry->context;
    solveRequest.options = mergedOptions(request.options);
    try {
      result = solver->solve(solveRequest);
    } catch (const PreconditionError& e) {
      respondError(respond, request.id, "solve", "bad_request", e.what());
      return;
    } catch (const std::exception& e) {
      respondError(respond, request.id, "solve", "solver_error", e.what());
      return;
    }
  }

  const Clock::time_point done = Clock::now();
  const double queueMs = millisBetween(admitted, pickedUp);
  const double totalMs = millisBetween(admitted, done);

  // Book-keeping before responding: a client that has seen this response
  // must find it reflected in an immediately following stats request.
  {
    const std::scoped_lock lock(statsMutex_);
    ++completed_;
    latency_.record(totalMs);
    queueWait_.record(queueMs);
  }

  const ResponseWriter writer(request.id, "solve");
  const Clock::time_point respondStart = Clock::now();
  respond(writer.ok([&](JsonWriter& w) {
    w.key("instance").value(entry->instance.spec.label());
    w.key("instance_hash").value(instanceHashHex(entry->hash));
    w.key("cache_hit").value(cacheHit);
    w.key("solver").value(request.algo);
    w.key("cost").value(static_cast<std::int64_t>(result.cost));
    w.key("feasible").value(result.feasible);
    w.key("proved_optimal").value(result.provedOptimal);
    if (!result.feasible)
      w.key("validation").value(result.validation.message);
    w.key("deadline")
        .value(static_cast<std::int64_t>(entry->instance.deadline));
    w.key("asap_makespan")
        .value(static_cast<std::int64_t>(entry->instance.asapMakespanD));
    w.key("num_nodes")
        .value(static_cast<std::int64_t>(entry->instance.gc.numNodes()));
    w.key("wall_ms").value(result.wallMs);
    w.key("queue_ms").value(queueMs);
    w.key("total_ms").value(totalMs);
    if (request.returnSchedule) {
      w.key("schedule");
      w.beginArray();
      for (const Time t : result.schedule.starts())
        w.value(static_cast<std::int64_t>(t));
      w.endArray();
    }
  }));
  if (obs::traceRecording())
    obs::traceSpanBetween("serve.respond", respondStart, Clock::now());
  recordRequestSpans(request, "solve", admitted, pickedUp);
}

void ServeServer::runReplayJob(const ServeRequest& request,
                               const Responder& respond,
                               Clock::time_point admitted,
                               Clock::time_point deadline) {
  const Clock::time_point pickedUp = Clock::now();
  if (obs::traceRecording()) obs::traceSetThreadName("serve-worker");
  if (expired(deadline, request, respond)) return;

  try {
    (void)ReschedulePolicyRegistry::global().resolve(request.policy);
  } catch (const PreconditionError& e) {
    respondError(respond, request.id, "replay", "bad_request", e.what());
    return;
  }

  bool cacheHit = false;
  ContextCache::EntryPtr entry;
  try {
    obs::TraceScope acquireSpan("serve.cache_acquire");
    entry = cache_.acquire(request.spec, &cacheHit);
    if (acquireSpan.recording())
      acquireSpan.arg("hit", static_cast<std::int64_t>(cacheHit));
  } catch (const std::exception& e) {
    respondError(respond, request.id, "replay", "bad_request", e.what());
    return;
  }
  if (expired(deadline, request, respond)) return;

  OnlineOptions opts;
  opts.solver = request.algo;
  opts.policy = request.policy;
  opts.runtimeNoise = request.runtimeNoise;
  opts.runtimeSeed = request.runtimeSeed;
  opts.solverOptions = mergedOptions(request.options);

  // The shared context describes (gc, instance.profile, deadline). With an
  // explicit actual spec the replay plans against exactly that forecast,
  // so the cached context applies; with an empty spec the engine generates
  // a *fresh* forecast/actual noise pair and must build its own context.
  std::unique_lock<std::mutex> entryLock(entry->mutex, std::defer_lock);
  if (!request.actual.empty()) {
    opts.sharedContext = &entry->context;
    entryLock.lock();
  }

  OnlineResult result;
  try {
    result = replayOnline(entry->instance, request.actual, opts);
  } catch (const PreconditionError& e) {
    respondError(respond, request.id, "replay", "bad_request", e.what());
    return;
  } catch (const std::exception& e) {
    respondError(respond, request.id, "replay", "solver_error", e.what());
    return;
  }
  if (entryLock.owns_lock()) entryLock.unlock();

  if (!result.ran) {
    respondError(respond, request.id, "replay", "solver_error",
                 result.error);
    return;
  }

  const Clock::time_point done = Clock::now();
  const double queueMs = millisBetween(admitted, pickedUp);
  const double totalMs = millisBetween(admitted, done);

  // As in runSolveJob: counters updated before the client can observe
  // the response.
  {
    const std::scoped_lock lock(statsMutex_);
    ++completed_;
    latency_.record(totalMs);
    queueWait_.record(queueMs);
  }

  const ResponseWriter writer(request.id, "replay");
  const Clock::time_point respondStart = Clock::now();
  respond(writer.ok([&](JsonWriter& w) {
    w.key("instance").value(entry->instance.spec.label());
    w.key("instance_hash").value(instanceHashHex(entry->hash));
    w.key("cache_hit").value(cacheHit);
    w.key("solver").value(request.algo);
    w.key("policy").value(result.policy);
    w.key("forecast").value(request.spec.scenario);
    if (request.actual.empty()) w.key("actual").null();
    else w.key("actual").value(request.actual);
    w.key("runtime_noise").value(request.runtimeNoise);
    w.key("deadline").value(static_cast<std::int64_t>(result.deadline));
    writeOnlineResultFields(w, result);
    w.key("queue_ms").value(queueMs);
    w.key("total_ms").value(totalMs);
  }));
  if (obs::traceRecording())
    obs::traceSpanBetween("serve.respond", respondStart, Clock::now());
  recordRequestSpans(request, "replay", admitted, pickedUp);
}

bool ServeServer::expired(Clock::time_point deadline,
                          const ServeRequest& request,
                          const Responder& respond) {
  if (Clock::now() <= deadline) return false;
  respondError(respond, request.id, serveKindName(request.kind), "timeout",
               "request exceeded its deadline before solving started");
  return true;
}

SolverOptions ServeServer::mergedOptions(
    const SolverOptions& requestOptions) const {
  SolverOptions merged = options_.solverDefaults;
  for (const auto& [key, value] : requestOptions.entries())
    merged.set(key, value);
  return merged;
}

void ServeServer::respondError(const Responder& respond,
                               const std::string& id, const std::string& kind,
                               const std::string& code,
                               const std::string& message) {
  {
    const std::scoped_lock lock(statsMutex_);
    if (code == "queue_full") ++rejectedQueueFull_;
    else if (code == "timeout") ++timeouts_;
    else ++failed_;
  }
  const ResponseWriter writer(id, kind);
  respond(writer.error(code, message));
}

} // namespace cawo
