#pragma once

#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "core/solve_context.hpp"
#include "sim/instance.hpp"

/// \file context_cache.hpp
/// LRU cache of built instances + their `SolveContext`s, keyed by the
/// canonical instance hash (`core/instance_hash`).
///
/// Building an instance (workflow generation, HEFT mapping, enhanced-graph
/// construction, profile expansion) and deriving the shared solve
/// artifacts (initial EST/LST windows, refined intervals, score orders)
/// dominates a small solve's latency. A serve daemon sees the same
/// workflows over and over as carbon signals change, so repeated requests
/// must skip that rebuild entirely: the cache maps the *canonical spec*
/// of a request to a previously built entry without re-building anything,
/// and stores entries under their canonical instance hash — two different
/// specs that expand to the same canonical instance share one entry.
///
/// Concurrency: `acquire` is thread-safe; instance *builds* happen outside
/// the cache lock (two concurrent first requests may both build — the
/// loser's build is discarded and the shared entry wins). A `SolveContext`
/// is not thread-safe, so workers must hold `Entry::mutex` while solving
/// against the entry. Eviction only drops the cache's reference — workers
/// holding the `shared_ptr` keep the entry alive until they finish.

namespace cawo {

class ContextCache {
public:
  /// One cached instance. `context` borrows `instance.gc` / `.profile`;
  /// the entry is heap-allocated and immovable, so the borrow is stable.
  struct Entry {
    explicit Entry(Instance built)
        : instance(std::move(built)),
          context(instance.gc, instance.profile, instance.deadline) {}

    Instance instance;
    SolveContext context;
    std::uint64_t hash = 0;   ///< canonical instance hash
    std::mutex mutex;         ///< held while solving (context is lazy)
  };
  using EntryPtr = std::shared_ptr<Entry>;

  /// Keep at most `capacity` entries (LRU eviction); 0 disables caching
  /// (every acquire builds and nothing is retained).
  explicit ContextCache(std::size_t capacity);

  /// The cached entry for `spec`, building (and inserting) it on a miss.
  /// `*cacheHit` reports which happened. Build failures (infeasible axes,
  /// unknown scenario spec) propagate as the builder's exceptions and
  /// cache nothing.
  EntryPtr acquire(const InstanceSpec& spec, bool* cacheHit);

  struct Counters {
    std::int64_t hits = 0;
    std::int64_t misses = 0;
    std::int64_t evictions = 0;
    std::size_t size = 0;
    std::size_t capacity = 0;
  };
  Counters counters() const;

  /// The canonical one-line spelling of a spec — every axis, including the
  /// ones `InstanceSpec::label()` omits (seed, intervals). Exposed for
  /// tests.
  static std::string specKey(const InstanceSpec& spec);

private:
  void touch(std::uint64_t hash);
  void evictIfOver();

  mutable std::mutex mutex_;
  std::size_t capacity_;
  std::int64_t hits_ = 0, misses_ = 0, evictions_ = 0;
  std::unordered_map<std::string, std::uint64_t> bySpec_;
  std::map<std::uint64_t, EntryPtr> byHash_;
  std::list<std::uint64_t> lru_; ///< front = most recently used
  std::map<std::uint64_t, std::list<std::uint64_t>::iterator> lruPos_;
};

} // namespace cawo
