#include "serve/listings.hpp"

#include <sstream>

#include "online/policy.hpp"
#include "profile/profile_source.hpp"
#include "sim/table.hpp"
#include "solver/registry.hpp"
#include "util/require.hpp"

namespace cawo {

Listing algoListing() {
  const SolverRegistry& registry = SolverRegistry::global();
  Listing listing;
  listing.names = registry.names();
  std::ostringstream out;
  TextTable table({"name", "family", "exact", "description"});
  for (const std::string& name : listing.names) {
    const SolverInfo meta = registry.create(name)->info();
    table.addRow({meta.name, meta.family, meta.exact ? "yes" : "no",
                  meta.description});
  }
  table.print(out);
  out << "\nselect with --algo=<name>, a glob (\"press*\"), a comma "
         "list, or \"all\";\nparameterised forms like "
         "\"greenheft[0.25]\" set the alpha inline.\n";
  listing.text = out.str();
  return listing;
}

Listing scenarioListing() {
  const ProfileSourceRegistry& registry = ProfileSourceRegistry::global();
  Listing listing;
  listing.names = registry.names();
  std::ostringstream out;
  TextTable table({"source", "spec syntax", "description"});
  for (const std::string& name : listing.names) {
    const ProfileSourceInfo& meta = registry.info(name);
    table.addRow({meta.name, meta.syntax, meta.description});
  }
  table.print(out);
  out << "\npass any spec via --scenario (single run) or "
         "--scenarios (campaign axis);\nappend "
         "\"+noise=A[,seed=N]\" for multiplicative forecast error. "
         "Grammar: docs/formats.md.\n";
  listing.text = out.str();
  return listing;
}

Listing policyListing() {
  const ReschedulePolicyRegistry& registry =
      ReschedulePolicyRegistry::global();
  Listing listing;
  listing.names = registry.names();
  std::ostringstream out;
  TextTable table({"policy", "spec syntax", "description"});
  for (const std::string& name : listing.names) {
    const PolicyInfo& meta = registry.info(name);
    table.addRow({meta.name, meta.syntax, meta.description});
  }
  table.print(out);
  out << "\npass one or more specs via --policy "
         "(e.g. --policy=static,periodic:every=4,"
         "reactive:threshold=0.15).\n";
  listing.text = out.str();
  return listing;
}

Listing listingFor(const std::string& what) {
  if (what == "algos") return algoListing();
  if (what == "scenarios") return scenarioListing();
  if (what == "policies") return policyListing();
  CAWO_REQUIRE(false, "unknown listing \"" + what +
                          "\" (valid: algos, scenarios, policies)");
  return {}; // unreachable
}

} // namespace cawo
