#include "online/result_json.hpp"

namespace cawo {

void writeOnlineResultFields(JsonWriter& w, const OnlineResult& r) {
  w.key("actual_cost").value(static_cast<std::int64_t>(r.actualCost));
  w.key("forecast_cost").value(static_cast<std::int64_t>(r.forecastCost));
  if (r.clairvoyantFeasible) {
    w.key("clairvoyant_cost")
        .value(static_cast<std::int64_t>(r.clairvoyantCost));
    w.key("regret").value(static_cast<std::int64_t>(r.regret));
    w.key("regret_ratio").value(r.regretRatio);
  } else {
    w.key("clairvoyant_cost").null();
    w.key("regret").null();
    w.key("regret_ratio").null();
  }
  w.key("resolves").value(static_cast<std::int64_t>(r.resolveCount));
  w.key("resolves_accepted")
      .value(static_cast<std::int64_t>(r.resolveAccepted));
  w.key("resolve_wall_ms").value(r.resolveWallMs);
  w.key("per_resolve_wall_ms");
  w.beginArray();
  for (const ResolveRecord& rr : r.resolves) w.value(rr.wallMs);
  w.endArray();
  w.key("finish_time").value(static_cast<std::int64_t>(r.finishTime));
  w.key("deadline_met").value(r.deadlineMet);
}

} // namespace cawo
