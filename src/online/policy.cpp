#include "online/policy.hpp"

#include <utility>

#include "util/require.hpp"
#include "util/strings.hpp"

namespace cawo {

// ---------------------------------------------------------------------------
// PolicySpec
// ---------------------------------------------------------------------------

PolicySpec PolicySpec::parse(const std::string& specText) {
  const std::string text{trim(specText)};
  CAWO_REQUIRE(!text.empty(), "empty policy spec");
  PolicySpec spec;
  spec.text = text;
  const std::string where = "policy spec \"" + text + "\"";

  const std::size_t colon = text.find(':');
  if (colon == std::string::npos) {
    spec.name = text;
    return spec;
  }
  spec.name = std::string{trim(text.substr(0, colon))};
  CAWO_REQUIRE(!spec.name.empty(), where + ": missing policy name");
  const std::string paramText = text.substr(colon + 1);
  CAWO_REQUIRE(!trim(paramText).empty(),
               where + ": dangling ':' without parameters");
  for (const std::string& part : split(paramText, ',')) {
    const std::string item{trim(part)};
    CAWO_REQUIRE(!item.empty(), where + ": empty parameter");
    const std::size_t eq = item.find('=');
    CAWO_REQUIRE(eq != std::string::npos,
                 where + ": expected key=value, got \"" + item + "\"");
    const std::string key{trim(item.substr(0, eq))};
    const std::string value{trim(item.substr(eq + 1))};
    CAWO_REQUIRE(!key.empty() && !value.empty(),
                 where + ": expected key=value, got \"" + item + "\"");
    CAWO_REQUIRE(!spec.hasParam(key),
                 where + ": duplicate parameter \"" + key + "\"");
    spec.params.push_back({key, value});
  }
  return spec;
}

bool PolicySpec::hasParam(const std::string& key) const {
  for (const PolicyParam& p : params)
    if (p.key == key) return true;
  return false;
}

std::string PolicySpec::param(const std::string& key,
                              const std::string& fallback) const {
  for (const PolicyParam& p : params)
    if (p.key == key) return p.value;
  return fallback;
}

double PolicySpec::paramDouble(const std::string& key, double fallback) const {
  if (!hasParam(key)) return fallback;
  return parseDoubleStrict(
      "policy spec \"" + text + "\": parameter \"" + key + "\"",
      param(key, ""));
}

std::int64_t PolicySpec::paramInt(const std::string& key,
                                  std::int64_t fallback) const {
  if (!hasParam(key)) return fallback;
  return parseInt64Strict(
      "policy spec \"" + text + "\": parameter \"" + key + "\"",
      param(key, ""));
}

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

ReschedulePolicyRegistry& ReschedulePolicyRegistry::global() {
  static ReschedulePolicyRegistry* instance = [] {
    auto* r = new ReschedulePolicyRegistry();
    registerBuiltinPolicies(*r);
    return r;
  }();
  return *instance;
}

void ReschedulePolicyRegistry::registerPolicy(PolicyInfo info,
                                              Factory factory) {
  CAWO_REQUIRE(!info.name.empty(), "policy name must not be empty");
  CAWO_REQUIRE(info.name.find(':') == std::string::npos &&
                   info.name.find(',') == std::string::npos &&
                   info.name.find('=') == std::string::npos,
               "policy name \"" + info.name +
                   "\" must not contain spec syntax characters (:,=)");
  CAWO_REQUIRE(find(info.name) == nullptr,
               "duplicate rescheduling policy \"" + info.name + "\"");
  CAWO_REQUIRE(factory != nullptr,
               "policy \"" + info.name + "\" has no factory");
  entries_.push_back({std::move(info), std::move(factory)});
}

const ReschedulePolicyRegistry::Entry* ReschedulePolicyRegistry::find(
    const std::string& name) const {
  for (const Entry& e : entries_)
    if (e.info.name == name) return &e;
  return nullptr;
}

bool ReschedulePolicyRegistry::contains(const std::string& name) const {
  return find(name) != nullptr;
}

std::vector<std::string> ReschedulePolicyRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(entries_.size());
  for (const Entry& e : entries_) out.push_back(e.info.name);
  return out;
}

const PolicyInfo& ReschedulePolicyRegistry::info(
    const std::string& name) const {
  const Entry* entry = find(name);
  CAWO_REQUIRE(entry != nullptr, "unknown rescheduling policy \"" + name +
                                     "\" (registered: " + syntaxSummary() +
                                     ")");
  return entry->info;
}

std::string ReschedulePolicyRegistry::syntaxSummary() const {
  std::string out;
  for (const Entry& e : entries_) {
    if (!out.empty()) out += ", ";
    out += e.info.syntax;
  }
  return out;
}

PolicyPtr ReschedulePolicyRegistry::resolve(const std::string& specText) const {
  const PolicySpec spec = PolicySpec::parse(specText);
  const Entry* entry = find(spec.name);
  CAWO_REQUIRE(entry != nullptr,
               "unknown rescheduling policy \"" + spec.name +
                   "\" in spec \"" + spec.text +
                   "\" — registered policies: " + syntaxSummary());
  PolicyPtr policy = entry->factory(spec);
  CAWO_REQUIRE(policy != nullptr,
               "policy factory \"" + spec.name + "\" returned null");
  return policy;
}

ReschedulePolicyRegistrar::ReschedulePolicyRegistrar(
    PolicyInfo info, ReschedulePolicyRegistry::Factory factory) {
  ReschedulePolicyRegistry::global().registerPolicy(std::move(info),
                                                    std::move(factory));
}

// ---------------------------------------------------------------------------
// Built-in policies
// ---------------------------------------------------------------------------

namespace {

/// Reject parameters the policy does not understand (typos must fail
/// loudly, mirroring the profile-source checkParams).
void checkParams(const PolicySpec& spec,
                 std::initializer_list<const char*> allowed) {
  for (const PolicyParam& p : spec.params) {
    bool known = false;
    for (const char* a : allowed)
      if (p.key == a) known = true;
    std::string list;
    for (const char* a : allowed) {
      if (!list.empty()) list += ", ";
      list += a;
    }
    CAWO_REQUIRE(known, "policy spec \"" + spec.text +
                            "\": unknown parameter \"" + p.key +
                            "\" for policy \"" + spec.name + "\" (known: " +
                            (list.empty() ? "none" : list) + ")");
  }
}

class StaticPolicy final : public ReschedulePolicy {
public:
  std::string name() const override { return "static"; }
  bool shouldResolve(const PolicyEvent&) override { return false; }
};

class PeriodicPolicy final : public ReschedulePolicy {
public:
  explicit PeriodicPolicy(std::int64_t every, std::string text)
      : every_(every), text_(std::move(text)) {}

  std::string name() const override { return text_; }

  bool shouldResolve(const PolicyEvent& event) override {
    return event.intervalsSinceResolve >= every_;
  }

private:
  std::int64_t every_;
  std::string text_;
};

class ReactivePolicy final : public ReschedulePolicy {
public:
  explicit ReactivePolicy(double threshold, std::string text)
      : threshold_(threshold), text_(std::move(text)) {}

  std::string name() const override { return text_; }

  bool shouldResolve(const PolicyEvent& event) override {
    return event.carbonDeviation && event.carbonDeviation() >= threshold_;
  }

private:
  double threshold_;
  std::string text_;
};

} // namespace

void registerBuiltinPolicies(ReschedulePolicyRegistry& registry) {
  registry.registerPolicy(
      {"static", "static",
       "never re-solve: execute the offline plan, billed against actuals"},
      [](const PolicySpec& spec) -> PolicyPtr {
        checkParams(spec, {});
        return std::make_unique<StaticPolicy>();
      });
  registry.registerPolicy(
      {"periodic", "periodic:every=K",
       "re-solve the residual problem every K forecast intervals "
       "(default 1)"},
      [](const PolicySpec& spec) -> PolicyPtr {
        checkParams(spec, {"every"});
        const std::int64_t every = spec.paramInt("every", 1);
        CAWO_REQUIRE(every >= 1, "policy spec \"" + spec.text +
                                     "\": every must be >= 1");
        return std::make_unique<PeriodicPolicy>(every, spec.text);
      });
  registry.registerPolicy(
      {"reactive", "reactive:threshold=X",
       "re-solve when billed carbon deviates from the plan's forecast by "
       ">= X relative (default 0.1)"},
      [](const PolicySpec& spec) -> PolicyPtr {
        checkParams(spec, {"threshold"});
        const double threshold = spec.paramDouble("threshold", 0.1);
        CAWO_REQUIRE(threshold > 0.0, "policy spec \"" + spec.text +
                                          "\": threshold must be positive");
        return std::make_unique<ReactivePolicy>(threshold, spec.text);
      });
}

} // namespace cawo
