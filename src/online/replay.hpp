#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <queue>
#include <string>
#include <vector>

#include "core/est_lst.hpp"
#include "core/schedule.hpp"
#include "core/solve_context.hpp"
#include "online/policy.hpp"
#include "sim/instance.hpp"
#include "solver/solver.hpp"

/// \file replay.hpp
/// The online execution replay engine (see DESIGN.md, "Online execution
/// engine").
///
/// The paper grades CaWoSched offline: the solver sees one carbon profile
/// and the schedule is billed against that same profile. This engine plays
/// the schedule *forward through reality*: the solver plans against a
/// **forecast** profile, execution is billed against an **actual** profile,
/// per-task runtimes may drift from ω(u), and at every task-completion
/// event a pluggable `ReschedulePolicy` decides whether the not-yet-started
/// remainder is re-solved against the latest state.
///
/// Execution model — a deterministic event loop over task completions:
///   * a task starts at max(plan start, release by real predecessor
///     completions); Gc's per-processor chain edges make predecessor
///     release subsume processor exclusivity;
///   * completed and running tasks are pinned; the engine maintains the
///     pinned-prefix EST/LST windows *incrementally* (`WindowState::place`
///     per start event — the PR-4 worklist machinery, never a full sweep);
///   * re-solves build a residual `SolveRequest` (pinned starts, effective
///     durations, release time, the live windows) against the shared
///     per-replay `SolveContext`, so each re-solve pays only for the
///     movable remainder; an infeasible re-solve is rejected and the
///     previous plan keeps executing.
///
/// With the `static` policy, zero runtime perturbation and
/// actual == forecast, the replay reproduces the offline solver's cost bit
/// for bit (pinned by test) — the engine is a strict generalisation of the
/// offline evaluation.

namespace cawo {

/// Knobs of one replay.
struct OnlineOptions {
  /// Registry solver producing the offline plan (and the clairvoyant
  /// reference solve against actuals).
  std::string solver = "pressWR-LS";
  /// Rescheduling policy spec (see ReschedulePolicyRegistry).
  std::string policy = "static";
  /// Per-task multiplicative runtime perturbation amplitude in [0, 1):
  /// actual duration = max(1, round(ω(u) · (1 + U(−A, A)))). 0 = exact.
  double runtimeNoise = 0.0;
  std::uint64_t runtimeSeed = 1;
  /// Forwarded to every solve (block-size, ls-radius, alpha, ...).
  SolverOptions solverOptions;
  /// Also solve the instance offline against the *actual* profile — the
  /// clairvoyant reference that regret is measured against. Costs one
  /// extra solve; switch off for pure execution replays.
  bool clairvoyant = true;
  /// Optional precomputed offline plan: `solver` solved against exactly
  /// (instance.gc, forecast, instance.deadline) with `solverOptions`.
  /// The plan and the clairvoyant reference are policy-independent, so
  /// per-policy loops solve each once and share them (see
  /// `applyClairvoyantReference`); when set the engine skips its own
  /// planning solve. Must outlive the replay.
  const SolveResult* precomputedPlan = nullptr;
  /// Optional shared per-instance context describing exactly
  /// (instance.gc, forecast, instance.deadline). Per-policy loops pass
  /// one so the memoized windows/score-order/refined-interval artifacts
  /// are derived once per row, not once per policy. Not thread-safe:
  /// the sharing replays must run sequentially. Must outlive the replay.
  const SolveContext* sharedContext = nullptr;
};

/// One re-solve attempt.
struct ResolveRecord {
  Time at = 0;          ///< event time of the attempt
  double wallMs = 0.0;  ///< wall time of the residual solve
  /// The new plan was adopted: feasible AND projected no worse than the
  /// incumbent. Otherwise the old plan keeps executing.
  bool accepted = false;
};

/// Everything one replay produced.
struct OnlineResult {
  std::string solver;
  std::string policy;
  bool ran = false;   ///< false: the offline solve failed (see `error`)
  std::string error;  ///< why the replay did not run

  Cost forecastCost = 0;    ///< offline plan billed against the forecast
  Cost actualCost = 0;      ///< executed trajectory billed against actuals
  Cost clairvoyantCost = 0; ///< same solver solved against actuals
  bool clairvoyantFeasible = false;
  /// actualCost − clairvoyantCost (meaningful when clairvoyantFeasible;
  /// can be negative — the clairvoyant reference is heuristic, not a
  /// proven optimum).
  Cost regret = 0;
  /// actualCost / clairvoyantCost; NaN when undefined.
  double regretRatio = 0.0;

  std::size_t resolveCount = 0;    ///< re-solve attempts
  std::size_t resolveAccepted = 0; ///< attempts that replaced the plan
  double resolveWallMs = 0.0;      ///< Σ wall time over all attempts
  double solveWallMs = 0.0;        ///< wall time of the offline solve
  std::vector<ResolveRecord> resolves;

  Time deadline = 0;   ///< effective deadline the replay ran under
  Time finishTime = 0; ///< completion time of the last task
  bool deadlineMet = false;
};

/// Event-driven replay of one instance. Construct, then either `run()` in
/// one go or `step()` through completion-event batches (tests use the
/// fine-grained form to check the incremental windows after every event).
/// The instance, forecast and actual must outlive the engine.
class ReplayEngine {
public:
  /// Solves the offline plan in the constructor; throws PreconditionError
  /// when the solver cannot run on the instance (capability mismatch) and
  /// InvariantError-style failures propagate. An *infeasible* offline
  /// solve is reported via `planFeasible()` instead of thrown.
  ReplayEngine(const Instance& instance, const PowerProfile& forecast,
               const PowerProfile& actual, const OnlineOptions& options);

  ReplayEngine(const ReplayEngine&) = delete;
  ReplayEngine& operator=(const ReplayEngine&) = delete;

  bool planFeasible() const { return planFeasible_; }

  /// All tasks completed?
  bool finished() const {
    return completedCount_ == static_cast<std::size_t>(numNodes());
  }

  /// Advance to the next completion-event batch: start everything
  /// startable, apply the batch's completions, consult the policy (and
  /// possibly re-solve). Returns the batch time. Requires
  /// `planFeasible() && !finished()`.
  Time step();

  /// Drive to completion and assemble the result. Also usable after
  /// partial manual stepping.
  OnlineResult run();

  // Introspection (tests and diagnostics).
  const EnhancedGraph& gc() const { return *gc_; }
  Time deadline() const { return deadline_; }
  Time now() const { return now_; }
  const WindowState& windows() const { return *windows_; }
  const Schedule& plan() const { return plan_; }
  const Schedule& executedStarts() const { return executed_; }
  const std::vector<std::uint8_t>& startedMask() const { return started_; }
  const std::vector<Time>& actualDurations() const { return durations_; }
  std::size_t resolveCount() const { return resolves_.size(); }

private:
  TaskId numNodes() const { return gc_->numNodes(); }
  void startReady();
  void startNode(TaskId v, Time at);
  void applyPolicy();
  bool attemptResolve();
  double windowedDeviation();
  std::int64_t intervalIndexAt(Time t) const;

  OnlineOptions options_;

  // Effective problem (differs from the instance for re-mapping solvers).
  const EnhancedGraph* gc_ = nullptr;
  const PowerProfile* forecast_ = nullptr;
  const PowerProfile* actual_ = nullptr;
  Time deadline_ = 0;
  std::shared_ptr<const EnhancedGraph> remappedGc_;    // keepalive
  std::shared_ptr<const PowerProfile> forecastOwned_;  // keepalive
  std::optional<PowerProfile> actualOwned_; // extended copy (remap case)

  const SolveContext* ctx_ = nullptr; ///< context of the effective problem
  std::optional<SolveContext> ownedCtx_; ///< backing storage unless shared
  SolverPtr resolveSolver_;         ///< residual-capable re-solver
  PolicyPtr policy_;

  bool planFeasible_ = false;
  std::string planError_;
  Cost forecastCost_ = 0;
  double solveWallMs_ = 0.0;

  Schedule plan_;                     ///< current plan (complete schedule)
  Schedule executed_;                 ///< actual starts (unset = unstarted)
  std::vector<Time> durations_;       ///< actual (perturbed) durations
  std::vector<Time> plannedLens_;     ///< ω(u) of the effective graph
  std::vector<std::uint8_t> started_, completed_;
  std::vector<TaskId> predsLeft_;
  /// Unstarted tasks whose predecessors have all completed — each task
  /// enters exactly once (when its last predecessor completes) and is
  /// compacted out once started, keeping dispatch scans proportional to
  /// the ready frontier instead of N.
  std::vector<TaskId> ready_;
  std::optional<WindowState> windows_; ///< live pinned-prefix windows
  std::size_t startedCount_ = 0, completedCount_ = 0;
  Time now_ = 0;
  Time finishTime_ = 0;

  using CompletionEvent = std::pair<Time, TaskId>;
  std::priority_queue<CompletionEvent, std::vector<CompletionEvent>,
                      std::greater<CompletionEvent>>
      queue_;

  // Policy bookkeeping.
  std::int64_t baselineInterval_ = 0;
  Cost baselineObserved_ = 0;
  Cost baselinePlanned_ = 0;
  bool deviationCached_ = false;
  double deviationValue_ = 0.0;
  Cost observedNow_ = 0, plannedNow_ = 0;
  std::vector<ResolveRecord> resolves_;
  std::size_t resolveAccepted_ = 0;
  std::vector<Time> residualDurations_; ///< scratch for re-solves
};

/// Fill the clairvoyant-reference fields of `result` (clairvoyant cost,
/// regret, regret ratio) from an already-computed reference solve. The
/// reference depends only on (instance, solver, actual) — per-policy
/// loops solve it once (`OnlineOptions::clairvoyant` on the first
/// replay) and share it across the row with this helper.
void applyClairvoyantReference(OnlineResult& result, bool feasible,
                               Cost clairvoyantCost);

/// One-call replay: build the engine, run to completion, fold solver
/// capability errors into `OnlineResult::error` instead of throwing.
/// `forecast`/`actual` must cover the instance deadline.
OnlineResult replayOnline(const Instance& instance,
                          const PowerProfile& forecast,
                          const PowerProfile& actual,
                          const OnlineOptions& options);

/// Convenience overload resolving the forecast/actual pair from the
/// instance's own scenario spec (the `+noise` modifier is the forecast
/// error — see generateForecastActualPair) or, when `actualSpec` is
/// non-empty, generating the actual from that spec through the instance's
/// own ProfileRequest.
OnlineResult replayOnline(const Instance& instance,
                          const std::string& actualSpec,
                          const OnlineOptions& options);

/// Replay one instance under several policies, sharing the
/// policy-independent work: the offline plan is solved once (not once per
/// policy) and the clairvoyant reference — when `options.clairvoyant` —
/// once, then spread across the rows with `applyClairvoyantReference`.
/// Results come back in policy order; `options.policy` is ignored. This
/// is the loop behind every policy-comparison surface (`cawosched-cli
/// replay`, the campaign online mode, `bench_online_regret`,
/// `examples/online_replay`).
std::vector<OnlineResult> replayOnlinePolicies(
    const Instance& instance, const PowerProfile& forecast,
    const PowerProfile& actual, const OnlineOptions& options,
    const std::vector<std::string>& policies);

/// Spec-resolving overload, mirroring `replayOnline(instance, actualSpec,
/// options)`.
std::vector<OnlineResult> replayOnlinePolicies(
    const Instance& instance, const std::string& actualSpec,
    const OnlineOptions& options, const std::vector<std::string>& policies);

} // namespace cawo
