#pragma once

#include "exp/json.hpp"
#include "online/replay.hpp"

/// \file result_json.hpp
/// The shared JSON spelling of an `OnlineResult`'s outcome fields —
/// `cawosched-cli replay` (`cawosched-replay-v1`) and
/// `bench_online_regret` (`cawosched-bench-online-v1`) both emit exactly
/// this sequence (docs/formats.md), so the schema lives in one place.

namespace cawo {

/// Write the outcome fields of a *ran* replay into the currently open
/// JSON object: actual/forecast/clairvoyant cost, regret, re-solve
/// counters and per-re-solve wall times, finish time and deadline
/// verdict. Callers write their own identifying keys (policy, noise,
/// seed, ...) before and close the object after.
void writeOnlineResultFields(JsonWriter& w, const OnlineResult& r);

} // namespace cawo
