#include "online/replay.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "core/carbon_cost.hpp"
#include "obs/trace.hpp"
#include "profile/profile_source.hpp"
#include "solver/registry.hpp"
#include "util/require.hpp"
#include "util/rng.hpp"

namespace cawo {

namespace {

/// Byte-level profile equality (same interval structure and budgets) —
/// decides whether the actual profile can share the forecast's extension
/// in the re-mapping case.
bool sameProfile(const PowerProfile& a, const PowerProfile& b) {
  if (a.numIntervals() != b.numIntervals()) return false;
  for (std::size_t j = 0; j < a.numIntervals(); ++j) {
    const Interval& x = a.interval(j);
    const Interval& y = b.interval(j);
    if (x.begin != y.begin || x.end != y.end || x.green != y.green)
      return false;
  }
  return true;
}

double quietNaN() { return std::numeric_limits<double>::quiet_NaN(); }

} // namespace

ReplayEngine::ReplayEngine(const Instance& instance,
                           const PowerProfile& forecast,
                           const PowerProfile& actual,
                           const OnlineOptions& options)
    : options_(options) {
  CAWO_REQUIRE(forecast.horizon() >= instance.deadline,
               "forecast profile must cover the instance deadline");
  CAWO_REQUIRE(actual.horizon() >= instance.deadline,
               "actual profile must cover the instance deadline");

  policy_ = ReschedulePolicyRegistry::global().resolve(options.policy);

  // Offline solve against the forecast. The context is built on the
  // instance graph; a re-mapping solver ignores it and reports its own
  // effective graph/profile/deadline, which the replay then runs under.
  const SolverRegistry& registry = SolverRegistry::global();
  const SolverPtr planner = registry.create(options.solver);
  if (options.sharedContext != nullptr) {
    CAWO_REQUIRE(&options.sharedContext->gc() == &instance.gc &&
                     &options.sharedContext->profile() == &forecast &&
                     options.sharedContext->deadline() == instance.deadline,
                 "OnlineOptions.sharedContext describes a different "
                 "(graph, forecast, deadline) than the replay");
    ctx_ = options.sharedContext;
  } else {
    ownedCtx_.emplace(instance.gc, forecast, instance.deadline);
    ctx_ = &*ownedCtx_;
  }
  const SolveResult solved = [&] {
    if (options.precomputedPlan != nullptr) return *options.precomputedPlan;
    SolveRequest request;
    request.gc = &instance.gc;
    request.profile = &forecast;
    request.deadline = instance.deadline;
    request.graph = &instance.graph;
    request.platform = &instance.platform;
    request.context = ctx_;
    request.options = options.solverOptions;
    return planner->solve(request);
  }();

  solveWallMs_ = solved.wallMs;
  forecastCost_ = solved.cost;
  planFeasible_ = solved.feasible;
  if (!planFeasible_) {
    planError_ = solved.validation.message.empty()
                     ? "offline solve infeasible"
                     : solved.validation.message;
  }

  // Effective problem: the instance as-is, or the re-mapped one.
  remappedGc_ = solved.remappedGc;
  forecastOwned_ = solved.extendedProfile;
  gc_ = remappedGc_ ? remappedGc_.get() : &instance.gc;
  forecast_ = forecastOwned_ ? forecastOwned_.get() : &forecast;
  deadline_ = solved.effectiveDeadline;
  if (sameProfile(actual, forecast)) {
    // Identical inputs share the forecast's extension, keeping the
    // actual == forecast parity bit-exact even for re-mapping solvers.
    actual_ = forecast_;
  } else if (forecast_->horizon() > actual.horizon()) {
    // A re-mapping solver stretched the horizon past the measured actual.
    // The unmeasured tail is billed with a green budget of 0 — the same
    // "overshoot is all brown" rule evaluateCostWithDurations applies past
    // the horizon — so remapping and non-remapping solvers are graded
    // under one billing rule.
    actualOwned_ = actual;
    actualOwned_->extendTo(forecast_->horizon(), 0);
    actual_ = &*actualOwned_;
  } else {
    actual_ = &actual;
  }

  // Re-seat the context only when the effective problem differs from the
  // planning one (re-mapping solvers).
  if (gc_ != &instance.gc || forecast_ != &forecast ||
      deadline_ != instance.deadline) {
    ownedCtx_.emplace(*gc_, *forecast_, deadline_);
    ctx_ = &*ownedCtx_;
  }

  // The re-solver: the planning solver itself when it is residual-capable,
  // otherwise the strongest greedy (its -LS pass is skipped on residuals
  // anyway, so "pressWR" is the natural fallback).
  resolveSolver_ = planner->info().supportsResidual
                       ? registry.create(options.solver)
                       : registry.create("pressWR");

  if (!planFeasible_) return;

  plan_ = solved.schedule;
  CAWO_REQUIRE(plan_.numNodes() == gc_->numNodes(),
               "the (precomputed) plan does not match the instance's "
               "effective graph");
  const auto n = static_cast<std::size_t>(gc_->numNodes());
  executed_ = Schedule(gc_->numNodes());
  started_.assign(n, 0);
  completed_.assign(n, 0);
  plannedLens_.resize(n);
  for (TaskId v = 0; v < gc_->numNodes(); ++v)
    plannedLens_[static_cast<std::size_t>(v)] = gc_->len(v);

  // Actual runtimes: one deterministic draw per non-trivial node, in node
  // order. Amplitude 0 keeps every duration exactly ω(u).
  durations_ = plannedLens_;
  CAWO_REQUIRE(options.runtimeNoise >= 0.0 && options.runtimeNoise < 1.0,
               "runtime noise amplitude must lie in [0, 1)");
  if (options.runtimeNoise > 0.0) {
    Rng rng(options.runtimeSeed);
    for (std::size_t i = 0; i < n; ++i) {
      if (plannedLens_[i] == 0) continue;
      const double factor =
          1.0 + rng.uniformReal(-options.runtimeNoise, options.runtimeNoise);
      durations_[i] = std::max<Time>(
          1, static_cast<Time>(std::llround(
                 static_cast<double>(plannedLens_[i]) * factor)));
    }
  }

  predsLeft_.assign(n, 0);
  for (TaskId v = 0; v < gc_->numNodes(); ++v) {
    predsLeft_[static_cast<std::size_t>(v)] =
        static_cast<TaskId>(gc_->preds(v).size());
    if (predsLeft_[static_cast<std::size_t>(v)] == 0) ready_.push_back(v);
  }

  windows_.emplace(ctx_->windowState());
  residualDurations_.resize(n);

  startReady();
}

std::int64_t ReplayEngine::intervalIndexAt(Time t) const {
  if (t >= forecast_->horizon())
    return static_cast<std::int64_t>(forecast_->numIntervals());
  return static_cast<std::int64_t>(forecast_->indexAt(t));
}

void ReplayEngine::startNode(TaskId v, Time at) {
  executed_.setStart(v, at);
  started_[static_cast<std::size_t>(v)] = 1;
  ++startedCount_;
  // The live pinned-prefix windows: one incremental repair per event.
  windows_->place(v, at);
  queue_.emplace(at + durations_[static_cast<std::size_t>(v)], v);
}

void ReplayEngine::startReady() {
  // Start every ready task whose dispatch time precedes the next
  // completion; anything later may still be re-planned by a policy
  // decision at that completion. Dispatch time = max(plan start, now):
  // predecessors release tasks through completion events, and Gc's
  // per-processor chains fold exclusivity into precedence. Only the
  // ready frontier is scanned (started entries are compacted out), so
  // dispatch stays proportional to the frontier, not N.
  while (true) {
    const Time nextCompletion =
        queue_.empty() ? kTimeInfinity : queue_.top().first;
    Time best = kTimeInfinity;
    std::size_t keep = 0;
    for (const TaskId v : ready_) {
      if (started_[static_cast<std::size_t>(v)]) continue;
      ready_[keep++] = v;
      best = std::min(best, std::max(plan_.start(v), now_));
    }
    ready_.resize(keep);
    if (best == kTimeInfinity || best >= nextCompletion) return;
    for (const TaskId v : ready_) {
      if (started_[static_cast<std::size_t>(v)]) continue;
      if (std::max(plan_.start(v), now_) == best) startNode(v, best);
    }
  }
}

double ReplayEngine::windowedDeviation() {
  if (deviationCached_) return deviationValue_;
  observedNow_ =
      evaluateCostPrefix(*gc_, *actual_, executed_, durations_, now_);
  plannedNow_ =
      evaluateCostPrefix(*gc_, *forecast_, plan_, plannedLens_, now_);
  const Cost observedDelta = observedNow_ - baselineObserved_;
  const Cost plannedDelta = plannedNow_ - baselinePlanned_;
  const Cost diff = observedDelta > plannedDelta
                        ? observedDelta - plannedDelta
                        : plannedDelta - observedDelta;
  deviationValue_ = static_cast<double>(diff) /
                    static_cast<double>(std::max<Cost>(plannedDelta, 1));
  deviationCached_ = true;
  return deviationValue_;
}

bool ReplayEngine::attemptResolve() {
  obs::TraceScope span("replay.resolve");
  if (span.recording()) span.arg("at", static_cast<std::int64_t>(now_));
  // Residual problem: pinned starts, effective durations (actual where
  // known, planned estimates otherwise), release at `now`, and the live
  // incrementally-maintained windows.
  for (TaskId v = 0; v < gc_->numNodes(); ++v) {
    const auto i = static_cast<std::size_t>(v);
    residualDurations_[i] = completed_[i] ? durations_[i] : plannedLens_[i];
  }
  ResidualProblem residual;
  residual.starts = &executed_;
  residual.started = &started_;
  residual.durations = &residualDurations_;
  residual.releaseTime = now_;
  residual.windows = &*windows_;

  SolveRequest request;
  request.gc = gc_;
  request.profile = forecast_;
  request.deadline = deadline_;
  request.context = ctx_;
  request.residual = &residual;
  request.options = options_.solverOptions;

  const SolveResult solved = resolveSolver_->solve(request);
  // Adopt the new plan only when it is feasible AND projects no worse
  // than the incumbent over the same residual state — a re-solve with a
  // weaker residual solver (e.g. the pin-aware greedy standing in for an
  // -LS plan) must never regress the plan it replaces. The incumbent is
  // projected the way it would actually continue: executed starts for the
  // pinned prefix, and plan starts clamped to `now` for the movable
  // remainder (runtime drift may have made early plan slots unreachable —
  // billing them would under-project the incumbent and mis-rank plans).
  bool adopt = solved.feasible;
  if (adopt) {
    // Dispatch-simulate the incumbent in topological order: started nodes
    // at their executed starts, movable nodes at max(plan, now, effective
    // end of every predecessor) — exactly where the dispatcher would put
    // them. Clamping only to `now` would bill movable nodes in slots the
    // plan cannot actually reach (e.g. before a running predecessor's
    // estimated completion) and reject genuinely better re-solves.
    Schedule projected(gc_->numNodes());
    for (const TaskId v : gc_->topoOrder()) {
      const auto i = static_cast<std::size_t>(v);
      if (started_[i]) {
        projected.setStart(v, executed_.start(v));
        continue;
      }
      Time start = std::max(plan_.start(v), now_);
      for (const TaskId p : gc_->preds(v)) {
        start = std::max(start,
                         projected.start(p) +
                             residualDurations_[static_cast<std::size_t>(p)]);
      }
      projected.setStart(v, start);
    }
    const Cost incumbent = evaluateCostWithDurations(
        *gc_, *forecast_, projected, residualDurations_);
    adopt = solved.cost <= incumbent;
  }
  ResolveRecord record;
  record.at = now_;
  record.wallMs = solved.wallMs;
  record.accepted = adopt;
  resolves_.push_back(record);
  if (adopt) {
    plan_ = solved.schedule;
    ++resolveAccepted_;
  }
  if (span.recording())
    span.arg("accepted", static_cast<std::int64_t>(adopt));
  return adopt;
}

void ReplayEngine::applyPolicy() {
  if (startedCount_ == static_cast<std::size_t>(numNodes())) return;

  deviationCached_ = false;
  PolicyEvent event;
  event.now = now_;
  event.deadline = deadline_;
  event.intervalsSinceResolve = intervalIndexAt(now_) - baselineInterval_;
  event.completedCount = completedCount_;
  event.startedCount = startedCount_;
  event.totalNodes = static_cast<std::size_t>(numNodes());
  event.resolveCount = resolves_.size();
  event.carbonDeviation = [this] { return windowedDeviation(); };

  if (!policy_->shouldResolve(event)) return;
  attemptResolve();
  policy_->onResolve(event);

  // Re-arm the policy baselines: interval clock and the deviation window
  // (measured against the plan now in force).
  baselineInterval_ = intervalIndexAt(now_);
  if (!deviationCached_) {
    baselineObserved_ =
        evaluateCostPrefix(*gc_, *actual_, executed_, durations_, now_);
  } else {
    baselineObserved_ = observedNow_;
  }
  baselinePlanned_ =
      evaluateCostPrefix(*gc_, *forecast_, plan_, plannedLens_, now_);
  deviationCached_ = false;
}

Time ReplayEngine::step() {
  CAWO_REQUIRE(planFeasible_, "cannot step a replay without a feasible plan");
  CAWO_REQUIRE(!finished(), "replay already finished");
  CAWO_REQUIRE(!queue_.empty(),
               "online replay stalled: no running task but unfinished nodes");

  obs::TraceScope span("replay.event");
  const Time t = queue_.top().first;
  if (span.recording()) span.arg("at", static_cast<std::int64_t>(t));
  // Apply the whole completion batch at t in deterministic (time, id)
  // order before consulting the policy once.
  while (!queue_.empty() && queue_.top().first == t) {
    const TaskId v = queue_.top().second;
    queue_.pop();
    const auto i = static_cast<std::size_t>(v);
    completed_[i] = 1;
    ++completedCount_;
    finishTime_ = std::max(finishTime_, t);
    for (const TaskId s : gc_->succs(v))
      if (--predsLeft_[static_cast<std::size_t>(s)] == 0)
        ready_.push_back(s);
  }
  now_ = t;

  if (!finished()) {
    applyPolicy();
    startReady();
  }
  return t;
}

OnlineResult ReplayEngine::run() {
  OnlineResult result;
  result.solver = options_.solver;
  result.policy = options_.policy;
  result.forecastCost = forecastCost_;
  result.solveWallMs = solveWallMs_;
  result.deadline = deadline_;
  result.regretRatio = quietNaN();
  if (!planFeasible_) {
    result.error = planError_;
    return result;
  }

  {
    obs::TraceScope span("replay.run");
    while (!finished()) step();
  }

  result.ran = true;
  result.actualCost =
      evaluateCostWithDurations(*gc_, *actual_, executed_, durations_);
  result.finishTime = finishTime_;
  result.deadlineMet = finishTime_ <= deadline_;
  result.resolveCount = resolves_.size();
  result.resolveAccepted = resolveAccepted_;
  result.resolves = resolves_;
  for (const ResolveRecord& r : resolves_) result.resolveWallMs += r.wallMs;
  return result;
}

void applyClairvoyantReference(OnlineResult& result, bool feasible,
                               Cost clairvoyantCost) {
  result.clairvoyantFeasible = feasible;
  result.regretRatio = quietNaN();
  if (!feasible || !result.ran) return;
  result.clairvoyantCost = clairvoyantCost;
  result.regret = result.actualCost - clairvoyantCost;
  if (clairvoyantCost > 0) {
    result.regretRatio = static_cast<double>(result.actualCost) /
                         static_cast<double>(clairvoyantCost);
  } else if (result.actualCost == 0) {
    result.regretRatio = 1.0;
  }
}

OnlineResult replayOnline(const Instance& instance,
                          const PowerProfile& forecast,
                          const PowerProfile& actual,
                          const OnlineOptions& options) {
  OnlineResult result;
  result.solver = options.solver;
  result.policy = options.policy;
  result.regretRatio = std::numeric_limits<double>::quiet_NaN();
  try {
    ReplayEngine engine(instance, forecast, actual, options);
    result = engine.run();
  } catch (const std::exception& e) {
    result.error = e.what();
    return result;
  }
  if (!result.ran || !options.clairvoyant) return result;

  // Clairvoyant reference: the same solver planning directly against the
  // (unextended) actual profile, billed the ordinary offline way.
  try {
    const SolverRegistry& registry = SolverRegistry::global();
    SolveContext ctx(instance.gc, actual, instance.deadline);
    SolveRequest request;
    request.gc = &instance.gc;
    request.profile = &actual;
    request.deadline = instance.deadline;
    request.graph = &instance.graph;
    request.platform = &instance.platform;
    request.context = &ctx;
    request.options = options.solverOptions;
    const SolveResult solved = registry.create(options.solver)->solve(request);
    applyClairvoyantReference(result, solved.feasible, solved.cost);
  } catch (const std::exception&) {
    result.clairvoyantFeasible = false;
  }
  return result;
}

/// An explicit actual spec is mutually exclusive with a `+noise` modifier
/// on the forecast spec: the modifier *is* the forecast error, so with an
/// explicit actual it would silently change what the solver plans against.
void requireForecastWithoutNoise(const InstanceSpec& spec,
                                 const std::string& actualSpec) {
  CAWO_REQUIRE(
      !ProfileSpec::parse(spec.scenario).hasNoise,
      "the forecast spec \"" + spec.scenario +
          "\" carries a +noise modifier (read as forecast error) AND an "
          "explicit actual \"" + actualSpec +
          "\" was given — drop one of the two");
}

OnlineResult replayOnline(const Instance& instance,
                          const std::string& actualSpec,
                          const OnlineOptions& options) {
  const ProfileRequest request = instanceProfileRequest(instance);
  if (actualSpec.empty()) {
    // One-spec semantics: the instance's own scenario spec resolves to a
    // forecast/actual pair (`+noise` = forecast error).
    const ProfilePair pair =
        generateForecastActualPair(instance.spec.scenario, request);
    return replayOnline(instance, pair.forecast, pair.actual, options);
  }
  requireForecastWithoutNoise(instance.spec, actualSpec);
  const PowerProfile actual = generateProfile(actualSpec, request);
  return replayOnline(instance, instance.profile, actual, options);
}

std::vector<OnlineResult> replayOnlinePolicies(
    const Instance& instance, const PowerProfile& forecast,
    const PowerProfile& actual, const OnlineOptions& options,
    const std::vector<std::string>& policies) {
  CAWO_REQUIRE(!policies.empty(), "no rescheduling policies given");
  std::vector<OnlineResult> results;
  results.reserve(policies.size());

  // The offline plan and the per-instance context are policy-independent:
  // derive each once up front and hand them to every replay.
  std::optional<SolveContext> ctx;
  ctx.emplace(instance.gc, forecast, instance.deadline);
  SolveResult plan;
  bool planSolved = false;
  std::string planError;
  try {
    SolveRequest request;
    request.gc = &instance.gc;
    request.profile = &forecast;
    request.deadline = instance.deadline;
    request.graph = &instance.graph;
    request.platform = &instance.platform;
    request.context = &*ctx;
    request.options = options.solverOptions;
    plan = SolverRegistry::global().create(options.solver)->solve(request);
    planSolved = true;
  } catch (const std::exception& e) {
    planError = e.what();
  }

  OnlineOptions opts = options;
  bool haveReference = false;
  bool referenceFeasible = false;
  Cost referenceCost = 0;
  for (const std::string& policy : policies) {
    opts.policy = policy;
    if (!planSolved) {
      OnlineResult failed;
      failed.solver = options.solver;
      failed.policy = policy;
      failed.regretRatio = quietNaN();
      failed.error = planError;
      results.push_back(std::move(failed));
      continue;
    }
    opts.precomputedPlan = &plan;
    opts.sharedContext = &*ctx;
    // The clairvoyant reference is policy-independent too: solve it with
    // the first replay, spread it across the rest.
    opts.clairvoyant = options.clairvoyant && !haveReference;
    OnlineResult r = replayOnline(instance, forecast, actual, opts);
    if (options.clairvoyant) {
      if (haveReference) {
        applyClairvoyantReference(r, referenceFeasible, referenceCost);
      } else if (r.ran) {
        haveReference = true;
        referenceFeasible = r.clairvoyantFeasible;
        referenceCost = r.clairvoyantCost;
      }
    }
    results.push_back(std::move(r));
  }
  return results;
}

std::vector<OnlineResult> replayOnlinePolicies(
    const Instance& instance, const std::string& actualSpec,
    const OnlineOptions& options, const std::vector<std::string>& policies) {
  const ProfileRequest request = instanceProfileRequest(instance);
  if (actualSpec.empty()) {
    const ProfilePair pair =
        generateForecastActualPair(instance.spec.scenario, request);
    return replayOnlinePolicies(instance, pair.forecast, pair.actual,
                                options, policies);
  }
  requireForecastWithoutNoise(instance.spec, actualSpec);
  const PowerProfile actual = generateProfile(actualSpec, request);
  return replayOnlinePolicies(instance, instance.profile, actual, options,
                              policies);
}

} // namespace cawo
