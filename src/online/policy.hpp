#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "util/types.hpp"

/// \file policy.hpp
/// Pluggable rescheduling policies for the online execution engine (see
/// DESIGN.md, "Online execution engine").
///
/// The replay engine consults a `ReschedulePolicy` at every
/// task-completion event batch: the policy decides whether the residual
/// problem (the not-yet-started remainder) should be re-solved against the
/// latest information. Policies are named by compact specs mirroring the
/// profile-source grammar:
///
///   static                       never re-solve — execute the offline plan
///   periodic:every=K             re-solve once K forecast intervals elapse
///                                since the last (attempted) re-solve
///   reactive:threshold=X         re-solve when the carbon billed so far
///                                deviates from the plan's forecast by ≥ X
///                                (relative), then re-arm
///
/// The `ReschedulePolicyRegistry` mirrors `SolverRegistry` and
/// `ProfileSourceRegistry`: built-ins self-register on first use, new
/// policies plug in via `ReschedulePolicyRegistrar`, and every surface
/// that takes a policy (`cawosched-cli replay`, the campaign `policies`
/// axis, `bench_online_regret`) accepts any registered spec.

namespace cawo {

/// One `key=value` parameter of a policy spec.
struct PolicyParam {
  std::string key;
  std::string value;
};

/// A parsed policy spec: `name[:key=value,...]`.
struct PolicySpec {
  std::string name;                ///< registered policy name
  std::vector<PolicyParam> params; ///< in spec order
  std::string text;                ///< the spec string, verbatim

  /// Parse a spec string; throws PreconditionError on malformed input.
  /// Does not check that the policy is registered — use
  /// `ReschedulePolicyRegistry::resolve` for that.
  static PolicySpec parse(const std::string& specText);

  bool hasParam(const std::string& key) const;
  std::string param(const std::string& key, const std::string& fallback) const;
  double paramDouble(const std::string& key, double fallback) const;
  std::int64_t paramInt(const std::string& key, std::int64_t fallback) const;
};

/// What a policy sees at one completion-event batch. Cheap signals are
/// precomputed; the carbon-deviation signal costs two prefix sweeps and is
/// provided lazily (memoized per event by the engine).
struct PolicyEvent {
  Time now = 0;      ///< batch time (some tasks just completed)
  Time deadline = 0; ///< the instance deadline
  /// Forecast intervals fully elapsed since the last re-solve attempt (or
  /// since execution start if none).
  std::int64_t intervalsSinceResolve = 0;
  std::size_t completedCount = 0;
  std::size_t startedCount = 0;
  std::size_t totalNodes = 0;
  std::size_t resolveCount = 0; ///< re-solve attempts so far
  /// Relative deviation of the carbon billed so far (executed prefix
  /// against the *actual* profile) from the plan's forecast of the same
  /// window: |observed − planned| / max(planned, 1). Lazy — only policies
  /// that read it pay for it.
  std::function<double()> carbonDeviation;
};

/// Decides, event by event, whether to re-solve the residual problem. A
/// policy instance lives for one replay and may keep state (the built-ins
/// re-arm their trigger after each attempt).
class ReschedulePolicy {
public:
  virtual ~ReschedulePolicy() = default;

  /// The resolved spec this instance was created from.
  virtual std::string name() const = 0;

  /// True to attempt a re-solve at this event. Called once per completion
  /// batch, after the completions are applied.
  virtual bool shouldResolve(const PolicyEvent& event) = 0;

  /// Notification that a re-solve was attempted (accepted or not) — the
  /// built-ins reset their periodic/deviation baselines here.
  virtual void onResolve(const PolicyEvent& event) { (void)event; }
};

using PolicyPtr = std::unique_ptr<ReschedulePolicy>;

/// Listing metadata for `--list-policies` and error messages.
struct PolicyInfo {
  std::string name;        ///< registered policy name
  std::string syntax;      ///< spec syntax, e.g. "periodic:every=K"
  std::string description; ///< one-line human description
};

/// Name → factory registry over every rescheduling policy.
class ReschedulePolicyRegistry {
public:
  /// A factory receives the parsed spec (for its parameters) and returns a
  /// fresh policy instance for one replay.
  using Factory = std::function<PolicyPtr(const PolicySpec&)>;

  /// The process-wide registry, with the built-in policies pre-registered:
  /// "static", "periodic" and "reactive".
  static ReschedulePolicyRegistry& global();

  /// Register a policy. Throws PreconditionError on duplicate names.
  void registerPolicy(PolicyInfo info, Factory factory);

  bool contains(const std::string& name) const;

  /// All registered policy names, in registration (canonical) order.
  std::vector<std::string> names() const;

  /// Listing metadata for a registered policy; throws for unknown names.
  const PolicyInfo& info(const std::string& name) const;

  /// Parse `specText`, check its name is registered, and instantiate the
  /// policy. Throws PreconditionError listing every registered policy.
  PolicyPtr resolve(const std::string& specText) const;

  /// One-line enumeration of registered specs and syntax.
  std::string syntaxSummary() const;

  ReschedulePolicyRegistry() = default;
  ReschedulePolicyRegistry(const ReschedulePolicyRegistry&) = delete;
  ReschedulePolicyRegistry& operator=(const ReschedulePolicyRegistry&) =
      delete;

private:
  struct Entry {
    PolicyInfo info;
    Factory factory;
  };
  const Entry* find(const std::string& name) const;

  std::vector<Entry> entries_; // registration order == listing order
};

/// RAII helper: registers a policy before main() runs.
class ReschedulePolicyRegistrar {
public:
  ReschedulePolicyRegistrar(PolicyInfo info,
                            ReschedulePolicyRegistry::Factory factory);
};

/// Register the built-in policies into `registry` (called once by
/// `global()`).
void registerBuiltinPolicies(ReschedulePolicyRegistry& registry);

} // namespace cawo
