#include "heft/green_heft.hpp"

#include <algorithm>
#include <numeric>

#include "util/require.hpp"

namespace cawo {

Cost estimateBrownEnergy(const PowerProfile& profile, Power platformIdle,
                         Power workPower, Time start, Time len) {
  CAWO_REQUIRE(start >= 0 && len >= 0, "invalid execution window");
  Cost brown = 0;
  Time t = start;
  const Time end = start + len;
  const Time horizon = profile.horizon();
  while (t < end && t < horizon) {
    const std::size_t j = profile.indexAt(t);
    const Interval& iv = profile.interval(j);
    const Time span = std::min(end, iv.end) - t;
    const Power headroom = std::max<Power>(iv.green - platformIdle, 0);
    const Power over = std::max<Power>(workPower - headroom, 0);
    brown += static_cast<Cost>(over) * span;
    t += span;
  }
  if (t < end) brown += static_cast<Cost>(workPower) * (end - t); // beyond horizon
  return brown;
}

HeftResult runGreenHeft(const TaskGraph& graph, const Platform& platform,
                        const PowerProfile& profile,
                        const GreenHeftOptions& opts) {
  CAWO_REQUIRE(opts.alpha >= 0.0 && opts.alpha <= 1.0,
               "alpha must lie in [0, 1]");
  const TaskId n = graph.numTasks();
  const ProcId P = platform.numProcessors();
  CAWO_REQUIRE(P >= 1, "platform has no processors");
  const Power platformIdle = platform.totalIdlePower();

  const std::vector<double> rank = heftUpwardRanks(graph, platform);
  std::vector<TaskId> order(static_cast<std::size_t>(n));
  std::iota(order.begin(), order.end(), TaskId{0});
  std::stable_sort(order.begin(), order.end(), [&](TaskId a, TaskId b) {
    const double ra = rank[static_cast<std::size_t>(a)];
    const double rb = rank[static_cast<std::size_t>(b)];
    if (ra != rb) return ra > rb;
    return a < b;
  });

  // Insertion-based slot search, as in plain HEFT.
  struct ProcTimeline {
    std::vector<std::pair<Time, Time>> slots;
    Time earliestFit(Time ready, Time len) const {
      Time candidate = ready;
      for (const auto& [s, e] : slots) {
        if (candidate + len <= s) return candidate;
        candidate = std::max(candidate, e);
      }
      return candidate;
    }
    void insert(Time start, Time end) {
      const auto it = std::lower_bound(slots.begin(), slots.end(),
                                       std::make_pair(start, end));
      slots.insert(it, {start, end});
    }
  };
  std::vector<ProcTimeline> timelines(static_cast<std::size_t>(P));
  std::vector<ProcId> procOf(static_cast<std::size_t>(n), kInvalidProc);
  std::vector<Time> ast(static_cast<std::size_t>(n), 0);
  std::vector<Time> aft(static_cast<std::size_t>(n), 0);

  struct Candidate {
    ProcId proc;
    Time start;
    Time eft;
    Cost brown;
  };

  for (const TaskId v : order) {
    std::vector<Candidate> candidates;
    candidates.reserve(static_cast<std::size_t>(P));
    for (ProcId p = 0; p < P; ++p) {
      Time ready = 0;
      for (const std::size_t ei : graph.inEdges(v)) {
        const auto& e = graph.edges()[ei];
        const auto iu = static_cast<std::size_t>(e.src);
        const Time comm = (procOf[iu] == p) ? 0 : e.data;
        ready = std::max(ready, aft[iu] + comm);
      }
      const Time len = platform.execTime(graph.work(v), p);
      const Time start =
          timelines[static_cast<std::size_t>(p)].earliestFit(ready, len);
      candidates.push_back(
          {p, start, start + len,
           estimateBrownEnergy(profile, platformIdle,
                               platform.proc(p).workPower, start, len)});
    }
    // Normalise both objectives by the per-task maxima, then mix.
    Time maxEft = 1;
    Cost maxBrown = 1;
    for (const Candidate& c : candidates) {
      maxEft = std::max(maxEft, c.eft);
      maxBrown = std::max(maxBrown, c.brown);
    }
    const Candidate* best = nullptr;
    double bestScore = 0.0;
    for (const Candidate& c : candidates) {
      const double score =
          opts.alpha * static_cast<double>(c.eft) /
              static_cast<double>(maxEft) +
          (1.0 - opts.alpha) * static_cast<double>(c.brown) /
              static_cast<double>(maxBrown);
      if (best == nullptr || score < bestScore ||
          (score == bestScore && c.proc < best->proc)) {
        best = &c;
        bestScore = score;
      }
    }
    const auto ivx = static_cast<std::size_t>(v);
    procOf[ivx] = best->proc;
    ast[ivx] = best->start;
    aft[ivx] = best->eft;
    timelines[static_cast<std::size_t>(best->proc)].insert(best->start,
                                                           best->eft);
  }

  HeftResult res{Mapping(n, P), std::move(ast), std::move(aft), 0};
  std::vector<std::vector<TaskId>> perProc(static_cast<std::size_t>(P));
  for (TaskId v = 0; v < n; ++v)
    perProc[static_cast<std::size_t>(procOf[static_cast<std::size_t>(v)])]
        .push_back(v);
  for (ProcId p = 0; p < P; ++p) {
    auto& tasks = perProc[static_cast<std::size_t>(p)];
    std::sort(tasks.begin(), tasks.end(), [&](TaskId a, TaskId b) {
      const Time sa = res.startTimes[static_cast<std::size_t>(a)];
      const Time sb = res.startTimes[static_cast<std::size_t>(b)];
      if (sa != sb) return sa < sb;
      return a < b;
    });
    for (const TaskId v : tasks) res.mapping.assign(v, p);
  }
  for (TaskId v = 0; v < n; ++v)
    res.makespan =
        std::max(res.makespan, res.finishTimes[static_cast<std::size_t>(v)]);
  return res;
}

} // namespace cawo
