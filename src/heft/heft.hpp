#pragma once

#include <vector>

#include "core/mapping.hpp"
#include "core/platform.hpp"
#include "core/task_graph.hpp"
#include "util/types.hpp"

/// \file heft.hpp
/// HEFT — Heterogeneous Earliest Finish Time (Topcuoglu et al., TPDS 2002).
///
/// The paper assumes the task mapping and ordering are produced by a
/// carbon-unaware list scheduler, "for instance as the result of executing
/// the de-facto standard HEFT algorithm", and generates its evaluation
/// mappings with "our own basic HEFT implementation without special
/// techniques for tie-breaking". This module reproduces that substrate:
///
///  1. *Rank phase*: upward ranks computed with average execution costs
///     over all processors and the plain data volume as the average
///     communication cost (unit bandwidth).
///  2. *Processor-selection phase*: tasks in non-increasing rank order are
///     placed on the processor that minimises their earliest finish time,
///     using insertion-based slot search; ties resolved by processor id.

namespace cawo {

struct HeftResult {
  Mapping mapping;           ///< task → processor plus per-processor order
  std::vector<Time> startTimes; ///< HEFT's planned start per task (AST)
  std::vector<Time> finishTimes;
  Time makespan = 0;
};

/// Run HEFT on the workflow. The resulting per-processor orders are sorted
/// by HEFT start time, and `startTimes` can serve as the communication
/// priority when building the enhanced graph.
HeftResult runHeft(const TaskGraph& graph, const Platform& platform);

/// The upward rank of every task (exposed for tests).
std::vector<double> heftUpwardRanks(const TaskGraph& graph,
                                    const Platform& platform);

} // namespace cawo
