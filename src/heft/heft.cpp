#include "heft/heft.hpp"

#include <algorithm>
#include <numeric>

#include "util/require.hpp"

namespace cawo {

std::vector<double> heftUpwardRanks(const TaskGraph& graph,
                                    const Platform& platform) {
  const TaskId n = graph.numTasks();
  const ProcId P = platform.numProcessors();
  std::vector<double> avgExec(static_cast<std::size_t>(n), 0.0);
  for (TaskId v = 0; v < n; ++v) {
    double sum = 0.0;
    for (ProcId p = 0; p < P; ++p)
      sum += static_cast<double>(platform.execTime(graph.work(v), p));
    avgExec[static_cast<std::size_t>(v)] = sum / static_cast<double>(P);
  }

  std::vector<double> rank(static_cast<std::size_t>(n), 0.0);
  const std::vector<TaskId> topo = graph.topologicalOrder();
  for (auto it = topo.rbegin(); it != topo.rend(); ++it) {
    const TaskId v = *it;
    double best = 0.0;
    for (const std::size_t ei : graph.outEdges(v)) {
      const auto& e = graph.edges()[ei];
      best = std::max(best, static_cast<double>(e.data) +
                                rank[static_cast<std::size_t>(e.dst)]);
    }
    rank[static_cast<std::size_t>(v)] =
        avgExec[static_cast<std::size_t>(v)] + best;
  }
  return rank;
}

namespace {

/// Scheduled busy slots on one processor, kept sorted by start time.
struct ProcTimeline {
  std::vector<std::pair<Time, Time>> slots; // (start, end)

  /// Earliest start ≥ ready that fits `len` with the insertion policy.
  Time earliestFit(Time ready, Time len) const {
    Time candidate = ready;
    for (const auto& [s, e] : slots) {
      if (candidate + len <= s) return candidate; // fits in the gap
      candidate = std::max(candidate, e);
    }
    return candidate;
  }

  void insert(Time start, Time end) {
    const auto it = std::lower_bound(
        slots.begin(), slots.end(), std::make_pair(start, end));
    slots.insert(it, {start, end});
  }
};

} // namespace

HeftResult runHeft(const TaskGraph& graph, const Platform& platform) {
  const TaskId n = graph.numTasks();
  const ProcId P = platform.numProcessors();
  CAWO_REQUIRE(P >= 1, "platform has no processors");

  const std::vector<double> rank = heftUpwardRanks(graph, platform);
  std::vector<TaskId> order(static_cast<std::size_t>(n));
  std::iota(order.begin(), order.end(), TaskId{0});
  std::stable_sort(order.begin(), order.end(), [&](TaskId a, TaskId b) {
    const double ra = rank[static_cast<std::size_t>(a)];
    const double rb = rank[static_cast<std::size_t>(b)];
    if (ra != rb) return ra > rb;
    return a < b; // no special tie-breaking (as in the paper)
  });

  std::vector<ProcTimeline> timelines(static_cast<std::size_t>(P));
  std::vector<ProcId> procOf(static_cast<std::size_t>(n), kInvalidProc);
  std::vector<Time> ast(static_cast<std::size_t>(n), 0);
  std::vector<Time> aft(static_cast<std::size_t>(n), 0);

  for (const TaskId v : order) {
    Time bestEft = kTimeInfinity;
    Time bestStart = 0;
    ProcId bestProc = 0;
    for (ProcId p = 0; p < P; ++p) {
      Time ready = 0;
      for (const std::size_t ei : graph.inEdges(v)) {
        const auto& e = graph.edges()[ei];
        const auto iu = static_cast<std::size_t>(e.src);
        CAWO_ASSERT(procOf[iu] != kInvalidProc,
                    "HEFT rank order must schedule predecessors first");
        const Time comm = (procOf[iu] == p) ? 0 : e.data;
        ready = std::max(ready, aft[iu] + comm);
      }
      const Time len = platform.execTime(graph.work(v), p);
      const Time start = timelines[static_cast<std::size_t>(p)].earliestFit(
          ready, len);
      const Time eft = start + len;
      if (eft < bestEft) {
        bestEft = eft;
        bestStart = start;
        bestProc = p;
      }
    }
    const auto ivx = static_cast<std::size_t>(v);
    procOf[ivx] = bestProc;
    ast[ivx] = bestStart;
    aft[ivx] = bestEft;
    timelines[static_cast<std::size_t>(bestProc)].insert(bestStart, bestEft);
  }

  // Assemble the mapping: per-processor order sorted by HEFT start time.
  HeftResult res{Mapping(n, P), std::move(ast), std::move(aft), 0};
  std::vector<std::vector<TaskId>> perProc(static_cast<std::size_t>(P));
  for (TaskId v = 0; v < n; ++v)
    perProc[static_cast<std::size_t>(procOf[static_cast<std::size_t>(v)])]
        .push_back(v);
  for (ProcId p = 0; p < P; ++p) {
    auto& tasks = perProc[static_cast<std::size_t>(p)];
    std::sort(tasks.begin(), tasks.end(), [&](TaskId a, TaskId b) {
      const Time sa = res.startTimes[static_cast<std::size_t>(a)];
      const Time sb = res.startTimes[static_cast<std::size_t>(b)];
      if (sa != sb) return sa < sb;
      return a < b;
    });
    for (const TaskId v : tasks) res.mapping.assign(v, p);
  }
  for (TaskId v = 0; v < n; ++v)
    res.makespan =
        std::max(res.makespan, res.finishTimes[static_cast<std::size_t>(v)]);
  return res;
}

} // namespace cawo
