#pragma once

#include "core/power_profile.hpp"
#include "heft/heft.hpp"

/// \file green_heft.hpp
/// A carbon-aware HEFT extension — the paper's stated future work
/// (Section 7: "targeting the design of a carbon-aware extension of HEFT
/// ... we envision a two-pass approach: a first pass devoted to mapping
/// and ordering ... and a second pass devoted to optimizing the schedule
/// through the approach followed in this paper").
///
/// This module implements that first pass: HEFT's processor-selection
/// phase is modified so a candidate (processor, slot) is scored by a
/// convex combination of its earliest finish time and an estimate of the
/// brown energy the execution window would draw:
///
///   score = alpha · EFT/maxEFT + (1 − alpha) · brown/maxBrown,
///
/// where `brown` integrates max(0, P_work − headroom(t)) over the window
/// and headroom(t) = max(0, G(t) − Σ P_idle) is the green power left after
/// the platform's idle draw. alpha = 1 recovers plain HEFT. The second
/// pass is a regular CaWoSched run on the produced mapping.

namespace cawo {

struct GreenHeftOptions {
  /// Trade-off between makespan (1.0 = plain HEFT) and carbon (0.0).
  double alpha = 0.5;
};

/// Run the carbon-aware HEFT variant against a green-power profile. The
/// profile should extend far enough to cover the expected makespan; the
/// tail beyond the profile horizon is treated as having zero headroom
/// (fully brown), which biases tasks into the covered green windows.
HeftResult runGreenHeft(const TaskGraph& graph, const Platform& platform,
                        const PowerProfile& profile,
                        const GreenHeftOptions& opts = {});

/// Estimated brown energy of executing on processor power `workPower`
/// during [start, start+len) under `profile` headroom (exposed for tests).
Cost estimateBrownEnergy(const PowerProfile& profile, Power platformIdle,
                         Power workPower, Time start, Time len);

} // namespace cawo
