#include "util/cli.hpp"

#include <algorithm>
#include <cstdlib>

#include "util/require.hpp"
#include "util/strings.hpp"

namespace cawo {

CliArgs::CliArgs(int argc, const char* const* argv,
                 const std::vector<std::string>& knownFlags,
                 const std::string& context) {
  // A typo'd flag must not just name itself — it lists what *would* have
  // been accepted, per surface/subcommand.
  const auto validList = [&knownFlags] {
    std::string out;
    for (const std::string& flag : knownFlags) {
      if (!out.empty()) out += ", ";
      out += "--" + flag;
    }
    return out;
  };
  const std::string where = context.empty() ? "" : " for " + context;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    CAWO_REQUIRE(startsWith(arg, "--"),
                 "unexpected positional argument" + where + ": " + arg);
    arg = arg.substr(2);
    std::string name;
    std::string value;
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      name = arg.substr(0, eq);
      value = arg.substr(eq + 1);
    } else {
      name = arg;
      if (i + 1 < argc && !startsWith(argv[i + 1], "--")) {
        value = argv[++i];
      } else {
        value = "1"; // boolean flag
      }
    }
    CAWO_REQUIRE(std::find(knownFlags.begin(), knownFlags.end(), name) !=
                     knownFlags.end(),
                 "unknown flag --" + name + where + " (valid: " +
                     validList() + ")");
    values_[name] = value;
  }
}

bool CliArgs::has(const std::string& name) const {
  return values_.count(name) != 0;
}

std::int64_t CliArgs::getInt(const std::string& name,
                             std::int64_t fallback) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  return std::strtoll(it->second.c_str(), nullptr, 10);
}

double CliArgs::getDouble(const std::string& name, double fallback) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  return std::strtod(it->second.c_str(), nullptr);
}

std::string CliArgs::getString(const std::string& name,
                               const std::string& fallback) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  return it->second;
}

unsigned threadsFromArgs(const CliArgs& args, const std::string& name,
                         unsigned fallback) {
  const std::int64_t value =
      args.getInt(name, static_cast<std::int64_t>(fallback));
  CAWO_REQUIRE(value >= 0, "flag --" + name +
                               " must be >= 0 (0 = all hardware threads), "
                               "got " + std::to_string(value));
  return static_cast<unsigned>(value);
}

} // namespace cawo
