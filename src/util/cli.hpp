#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

/// \file cli.hpp
/// Minimal command-line flag parser for bench/example binaries.
///
/// Supported syntax: `--name=value`, `--name value`, and boolean `--name`.
/// Unknown flags raise an error that names the offending flag *and* lists
/// every flag the (sub)command accepts, so typos don't silently change
/// experiments and the fix is visible without reaching for --help.

namespace cawo {

class CliArgs {
public:
  /// Parse `argv`; `context` names the surface for error messages (e.g.
  /// "cawosched-cli replay") — unknown-flag errors read
  /// "unknown flag --foo for <context> (valid: --a, --b, ...)".
  CliArgs(int argc, const char* const* argv,
          const std::vector<std::string>& knownFlags,
          const std::string& context = "");

  bool has(const std::string& name) const;
  std::int64_t getInt(const std::string& name, std::int64_t fallback) const;
  double getDouble(const std::string& name, double fallback) const;
  std::string getString(const std::string& name,
                        const std::string& fallback) const;

private:
  std::map<std::string, std::string> values_;
};

/// Parse a `--threads`-style flag with the repo-wide convention: 0 means
/// "hardware concurrency", a positive value is an explicit worker count,
/// and a negative value is a typed usage error (PreconditionError) — the
/// unsigned plumbing downstream would otherwise wrap it into an absurd
/// thread count. Returns `fallback` when the flag is absent.
unsigned threadsFromArgs(const CliArgs& args, const std::string& name,
                         unsigned fallback);

} // namespace cawo
