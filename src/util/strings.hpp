#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

/// \file strings.hpp
/// Small string utilities shared by the DOT parser, CLI and table printers.

namespace cawo {

/// Strict numeric parsing: the whole token must be consumed and in range,
/// or a PreconditionError is thrown whose message starts with `what`
/// (e.g. `campaign key "tasks"`). Shared by the campaign parser and the
/// profile-spec parser so both layers reject malformed values identically.
double parseDoubleStrict(const std::string& what, const std::string& token);
std::int64_t parseInt64Strict(const std::string& what,
                              const std::string& token);
std::uint64_t parseUint64Strict(const std::string& what,
                                const std::string& token);

/// Strip leading/trailing whitespace.
std::string_view trim(std::string_view s);

/// Split on a single character; empty fields are kept.
std::vector<std::string> split(std::string_view s, char sep);

/// True if `s` starts with `prefix`.
bool startsWith(std::string_view s, std::string_view prefix);

/// True if `s` ends with `suffix`.
bool endsWith(std::string_view s, std::string_view suffix);

/// Glob match with `*` (any run) and `?` (any one char); linear-time
/// two-pointer algorithm, no backtracking blowup. Shared by the solver
/// registry's selection strings and the result-store query filters, so
/// `--algos` and `query --solvers` accept the same patterns.
bool globMatch(const std::string& pattern, const std::string& text);

/// True if `s` contains glob metacharacters (`*` or `?`).
bool isGlob(const std::string& s);

/// Render a double with fixed precision (for tables).
std::string formatFixed(double value, int precision);

/// Left-pad / right-pad a string to the given width.
std::string padLeft(std::string s, std::size_t width);
std::string padRight(std::string s, std::size_t width);

} // namespace cawo
