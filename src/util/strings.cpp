#include "util/strings.hpp"

#include <cctype>
#include <cerrno>
#include <cstdlib>
#include <sstream>

#include "util/require.hpp"

namespace cawo {

double parseDoubleStrict(const std::string& what, const std::string& token) {
  char* end = nullptr;
  const double v = std::strtod(token.c_str(), &end);
  CAWO_REQUIRE(end != token.c_str() && *end == '\0',
               what + ": \"" + token + "\" is not a number");
  return v;
}

std::int64_t parseInt64Strict(const std::string& what,
                              const std::string& token) {
  errno = 0;
  char* end = nullptr;
  const long long v = std::strtoll(token.c_str(), &end, 10);
  CAWO_REQUIRE(end != token.c_str() && *end == '\0' && errno != ERANGE,
               what + ": \"" + token + "\" is not an integer");
  return static_cast<std::int64_t>(v);
}

std::uint64_t parseUint64Strict(const std::string& what,
                                const std::string& token) {
  CAWO_REQUIRE(!token.empty() && token[0] != '-',
               what + ": \"" + token + "\" must be a non-negative integer");
  errno = 0;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(token.c_str(), &end, 10);
  CAWO_REQUIRE(end != token.c_str() && *end == '\0' && errno != ERANGE,
               what + ": \"" + token + "\" is not a valid 64-bit integer");
  return static_cast<std::uint64_t>(v);
}

std::string_view trim(std::string_view s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::vector<std::string> split(std::string_view s, char sep) {
  std::vector<std::string> out;
  std::size_t pos = 0;
  while (true) {
    const std::size_t next = s.find(sep, pos);
    if (next == std::string_view::npos) {
      out.emplace_back(s.substr(pos));
      break;
    }
    out.emplace_back(s.substr(pos, next - pos));
    pos = next + 1;
  }
  return out;
}

bool startsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool endsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

bool globMatch(const std::string& pattern, const std::string& text) {
  std::size_t p = 0, t = 0, star = std::string::npos, mark = 0;
  while (t < text.size()) {
    if (p < pattern.size() &&
        (pattern[p] == '?' || pattern[p] == text[t])) {
      ++p;
      ++t;
    } else if (p < pattern.size() && pattern[p] == '*') {
      star = p++;
      mark = t;
    } else if (star != std::string::npos) {
      p = star + 1;
      t = ++mark;
    } else {
      return false;
    }
  }
  while (p < pattern.size() && pattern[p] == '*') ++p;
  return p == pattern.size();
}

bool isGlob(const std::string& s) {
  return s.find('*') != std::string::npos || s.find('?') != std::string::npos;
}

std::string formatFixed(double value, int precision) {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(precision);
  os << value;
  return os.str();
}

std::string padLeft(std::string s, std::size_t width) {
  if (s.size() < width) s.insert(0, width - s.size(), ' ');
  return s;
}

std::string padRight(std::string s, std::size_t width) {
  if (s.size() < width) s.append(width - s.size(), ' ');
  return s;
}

} // namespace cawo
