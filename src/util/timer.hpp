#pragma once

#include <chrono>

/// \file timer.hpp
/// Small wall-clock timer for the running-time experiments (Figures 8/12/13).

namespace cawo {

class WallTimer {
public:
  WallTimer() : start_(Clock::now()) {}

  void reset() { start_ = Clock::now(); }

  /// Elapsed wall time in milliseconds.
  double elapsedMs() const {
    return std::chrono::duration<double, std::milli>(Clock::now() - start_)
        .count();
  }

  /// Elapsed wall time in seconds.
  double elapsedSec() const { return elapsedMs() / 1000.0; }

private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

} // namespace cawo
