#include "util/progress.hpp"

#include <cstdint>
#include <iostream>
#include <sstream>

#include "util/strings.hpp"

namespace cawo {

ProgressMeter::ProgressMeter(bool enabled) : ProgressMeter(enabled, std::cerr) {}

ProgressMeter::ProgressMeter(bool enabled, std::ostream& out)
    : ProgressMeter(enabled, out, Clock::now(),
                    std::chrono::milliseconds(100)) {}

ProgressMeter::ProgressMeter(bool enabled, std::ostream& out,
                             Clock::time_point start, Clock::duration throttle)
    : enabled_(enabled), out_(out), start_(start), throttle_(throttle) {}

void ProgressMeter::tick(std::size_t done, std::size_t total,
                         Clock::time_point now) {
  if (!enabled_ || total == 0) return;
  std::lock_guard<std::mutex> lock(mutex_);
  if (done < total && now - last_ < throttle_) return;
  last_ = now;
  const double secs = std::chrono::duration<double>(now - start_).count();
  const double rate = secs > 0 ? static_cast<double>(done) / secs : 0.0;
  std::ostringstream line; // one write per update, no interleaving
  line << '\r' << done << '/' << total << " cells";
  if (rate > 0) {
    line << "  " << formatFixed(rate, 1) << " cells/s";
    if (done < total)
      line << "  ETA " << formatEta(static_cast<double>(total - done) / rate);
  }
  line << "    ";
  if (done >= total) line << '\n';
  out_ << line.str() << std::flush;
}

std::string ProgressMeter::formatEta(double seconds) {
  const auto s = static_cast<std::int64_t>(seconds + 0.5);
  if (s >= 3600)
    return std::to_string(s / 3600) + "h" +
           padLeft(std::to_string((s % 3600) / 60), 2) + "m";
  if (s >= 60)
    return std::to_string(s / 60) + "m" +
           padLeft(std::to_string(s % 60), 2) + "s";
  return std::to_string(s) + "s";
}

} // namespace cawo
