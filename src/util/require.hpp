#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

/// \file require.hpp
/// Precondition / invariant checking helpers.
///
/// Following the C++ Core Guidelines (I.6 / E.12), we validate public-API
/// preconditions with exceptions carrying a precise message rather than
/// asserting, so library consumers get actionable errors in Release builds.

namespace cawo {

/// Thrown when a public-API precondition is violated.
class PreconditionError : public std::invalid_argument {
public:
  using std::invalid_argument::invalid_argument;
};

/// Thrown when an internal invariant is violated (a library bug).
class InvariantError : public std::logic_error {
public:
  using std::logic_error::logic_error;
};

namespace detail {
[[noreturn]] inline void throwPrecondition(const char* expr, const char* file,
                                           int line, const std::string& msg) {
  std::ostringstream os;
  os << "precondition failed: " << expr << " at " << file << ':' << line;
  if (!msg.empty()) os << " — " << msg;
  throw PreconditionError(os.str());
}

[[noreturn]] inline void throwInvariant(const char* expr, const char* file,
                                        int line, const std::string& msg) {
  std::ostringstream os;
  os << "invariant violated: " << expr << " at " << file << ':' << line;
  if (!msg.empty()) os << " — " << msg;
  throw InvariantError(os.str());
}
} // namespace detail

} // namespace cawo

/// Validate a caller-supplied argument; throws cawo::PreconditionError.
#define CAWO_REQUIRE(expr, msg)                                                \
  do {                                                                         \
    if (!(expr))                                                               \
      ::cawo::detail::throwPrecondition(#expr, __FILE__, __LINE__, (msg));     \
  } while (false)

/// Check an internal invariant; throws cawo::InvariantError.
#define CAWO_ASSERT(expr, msg)                                                 \
  do {                                                                         \
    if (!(expr))                                                               \
      ::cawo::detail::throwInvariant(#expr, __FILE__, __LINE__, (msg));        \
  } while (false)
