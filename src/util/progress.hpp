#pragma once

#include <chrono>
#include <cstddef>
#include <iosfwd>
#include <mutex>
#include <string>

/// \file progress.hpp
/// Live progress line for long-running sweeps: a `\r`-updated
/// "done/total cells, rate, ETA" line, throttled to ~10 updates/s so
/// million-cell campaigns don't drown in terminal writes. Writes go to
/// an injected stream (stderr in the CLI) so stdout stays clean for
/// summaries and piped JSON — and so tests can capture the output.

namespace cawo {

class ProgressMeter {
public:
  using Clock = std::chrono::steady_clock;

  /// CLI constructor: writes to `out` (stderr by default), epoch = now.
  explicit ProgressMeter(bool enabled);
  ProgressMeter(bool enabled, std::ostream& out);

  /// Test constructor: explicit epoch and throttle interval, so ticks
  /// can be driven with synthetic time points.
  ProgressMeter(bool enabled, std::ostream& out, Clock::time_point start,
                Clock::duration throttle);

  /// Thread-safe; usable directly as a CampaignProgress callback.
  void operator()(std::size_t done, std::size_t total) {
    tick(done, total, Clock::now());
  }

  /// The testable core: one update at an explicit "now". Rules —
  ///  - disabled or total == 0: never writes;
  ///  - non-final updates within the throttle interval of the previous
  ///    write are dropped;
  ///  - the final update (done >= total) always writes and ends the
  ///    line with '\n' instead of leaving the carriage-return line open.
  void tick(std::size_t done, std::size_t total, Clock::time_point now);

  /// "37s", "2m 5s", "1h 2m" — rendered from fractional seconds,
  /// rounded to the nearest second, minutes/seconds space-padded to 2.
  static std::string formatEta(double seconds);

private:
  bool enabled_;
  std::ostream& out_;
  std::mutex mutex_;
  Clock::time_point start_;
  Clock::time_point last_;
  Clock::duration throttle_;
};

} // namespace cawo
