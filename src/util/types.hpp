#pragma once

#include <cstdint>
#include <limits>

/// \file types.hpp
/// Fundamental integer types used throughout CaWoSched.
///
/// The paper expresses every quantity as an integer multiple of a common
/// time unit; we mirror that with 64-bit signed integers so that products
/// of time spans and power levels (carbon cost) cannot overflow for any
/// instance we generate.

namespace cawo {

/// Discrete time, in abstract time units (the paper's unit grid).
using Time = std::int64_t;

/// Power draw per time unit (idle, working, or green-budget values).
using Power = std::int64_t;

/// Carbon cost: (power above the green budget) x (time units).
using Cost = std::int64_t;

/// Normalised amount of work of a task (vertex weight). The actual running
/// time is `ceil(work / speed)` on the processor the task is mapped to.
using Work = std::int64_t;

/// Amount of data on an edge (comm time at unit bandwidth).
using Data = std::int64_t;

/// Index of a task in a TaskGraph or of a node in an EnhancedGraph.
using TaskId = std::int32_t;

/// Index of a processor (real compute node or fictional link processor).
using ProcId = std::int32_t;

inline constexpr TaskId kInvalidTask = -1;
inline constexpr ProcId kInvalidProc = -1;
inline constexpr Time kTimeInfinity = std::numeric_limits<Time>::max() / 4;
inline constexpr Cost kCostInfinity = std::numeric_limits<Cost>::max() / 4;

} // namespace cawo
