#pragma once

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

/// \file parallel.hpp
/// Shared threading helpers: `parallelFor` runs an index-addressed job
/// list across hardware threads (suite runner, campaign engine, CLI), and
/// `WorkerPool` is a persistent pool with a *bounded* job queue — the
/// serve daemon's admission queue + worker pool (src/serve) is built on
/// it. Determinism is the caller's business (our jobs write to disjoint
/// slots).

namespace cawo {

/// Invoke `fn(i)` for every i in [0, n) on up to `threads` workers.
///
/// Pinned edge-case behaviour (tests/test_parallel.cpp):
///   * `n == 0` — returns immediately, `fn` is never invoked;
///   * `threads == 0` — clamps to `hardware_concurrency()`, and to 1 when
///     even that reports 0;
///   * `threads > n` — clamps to `n` (never spawns an idle thread);
///   * exceptions — if a job throws, no *further* jobs are started
///     (already-running jobs finish), and the first exception (in
///     completion order) is rethrown on the calling thread after all
///     workers have drained. With one effective worker the job loop runs
///     inline and the exception propagates directly — same observable
///     behaviour.
template <typename Fn>
void parallelFor(std::size_t n, unsigned threads, Fn&& fn) {
  if (n == 0) return;
  if (threads == 0) threads = std::thread::hardware_concurrency();
  if (threads == 0) threads = 1;
  threads = std::min<unsigned>(threads, static_cast<unsigned>(n));

  if (threads == 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }

  std::atomic<std::size_t> next{0};
  std::atomic<bool> failed{false};
  std::exception_ptr firstError;
  std::mutex errorMutex;

  auto worker = [&]() {
    while (!failed.load(std::memory_order_relaxed)) {
      const std::size_t i = next.fetch_add(1);
      if (i >= n) return;
      try {
        fn(i);
      } catch (...) {
        const std::scoped_lock lock(errorMutex);
        if (!failed.exchange(true)) firstError = std::current_exception();
      }
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(threads);
  for (unsigned t = 0; t < threads; ++t) pool.emplace_back(worker);
  for (auto& t : pool) t.join();
  if (firstError) std::rethrow_exception(firstError);
}

/// Deterministic order-preserving best-of reduction: evaluate `eval(i)`
/// for every i in [0, n), possibly concurrently, and return the index of
/// the best value under `better` (a strict "a beats b" predicate), with
/// ties broken toward the LOWEST index — never toward whichever worker
/// happened to finish first. Returns `n` (and leaves `*bestValue` at
/// `worst`) when no value beats `worst`.
///
/// The index range is split into one contiguous chunk per worker; each
/// chunk is scanned left to right (the first strictly-better value wins
/// within the chunk) and the per-chunk champions are merged in chunk
/// order on the calling thread. Both steps prefer the earlier index on
/// ties, so the winner is identical for every thread count — including
/// 1, where the scan runs inline with no threads spawned. `eval` must be
/// safe to call concurrently (it may only read shared state).
template <typename V, typename Eval, typename Better>
std::size_t parallelOrderedBest(std::size_t n, unsigned threads, V worst,
                                Eval&& eval, Better&& better,
                                V* bestValue = nullptr) {
  if (threads == 0) threads = std::thread::hardware_concurrency();
  if (threads == 0) threads = 1;
  threads = std::min<unsigned>(threads, static_cast<unsigned>(
                                            std::min<std::size_t>(n, ~0u)));

  std::size_t bestIdx = n;
  V best = worst;
  if (threads <= 1) {
    for (std::size_t i = 0; i < n; ++i) {
      V v = eval(i);
      if (better(v, best)) {
        best = std::move(v);
        bestIdx = i;
      }
    }
  } else {
    struct Champion {
      std::size_t idx;
      V value;
    };
    std::vector<Champion> champs(threads, Champion{n, worst});
    parallelFor(threads, threads, [&](std::size_t c) {
      const std::size_t lo = n * c / threads;
      const std::size_t hi = n * (c + 1) / threads;
      Champion mine{n, worst};
      for (std::size_t i = lo; i < hi; ++i) {
        V v = eval(i);
        if (better(v, mine.value)) {
          mine.value = std::move(v);
          mine.idx = i;
        }
      }
      champs[c] = std::move(mine);
    });
    for (Champion& c : champs) {
      if (c.idx != n && better(c.value, best)) {
        best = std::move(c.value);
        bestIdx = c.idx;
      }
    }
  }
  if (bestValue != nullptr) *bestValue = std::move(best);
  return bestIdx;
}

/// Persistent worker pool with a bounded job queue and non-blocking
/// admission.
///
/// Unlike `parallelFor` (a one-shot fork/join over a fixed index range),
/// a `WorkerPool` lives for many submissions: `trySubmit` enqueues a job
/// and returns immediately — `false` when the queue is at capacity
/// (backpressure: the caller decides whether to reject, retry or shed
/// load) or when the pool is stopping. Workers pop jobs FIFO.
///
/// Exceptions escaping a job are caught and stored; the first one (in
/// completion order) is exposed via `firstError()` and the pool keeps
/// running — one poisoned request must not take a long-running service
/// down. Jobs that need failure semantics should catch their own.
///
/// `drain()` blocks until the queue is empty *and* every worker is idle.
/// The destructor drains, then joins. Thread-safe throughout.
class WorkerPool {
public:
  /// Spawn `threads` workers (0 = hardware concurrency, min 1) serving a
  /// queue of at most `queueCapacity` (≥ 1) pending jobs.
  explicit WorkerPool(unsigned threads, std::size_t queueCapacity = 1024)
      : capacity_(std::max<std::size_t>(1, queueCapacity)) {
    if (threads == 0) threads = std::thread::hardware_concurrency();
    if (threads == 0) threads = 1;
    threadCount_ = threads;
    workers_.reserve(threads);
    for (unsigned t = 0; t < threads; ++t)
      workers_.emplace_back([this] { workerLoop(); });
  }

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  ~WorkerPool() { stop(); }

  /// Enqueue a job; false when full or stopping (the job is dropped).
  bool trySubmit(std::function<void()> job) {
    {
      const std::scoped_lock lock(mutex_);
      if (stopping_ || queue_.size() >= capacity_) return false;
      queue_.push_back(std::move(job));
    }
    wake_.notify_one();
    return true;
  }

  /// Block until the queue is empty and all workers are idle. Jobs
  /// submitted concurrently with the drain may extend the wait.
  void drain() {
    std::unique_lock lock(mutex_);
    idle_.wait(lock, [this] { return queue_.empty() && busy_ == 0; });
  }

  /// Finish every queued job, then join the workers. Idempotent and safe
  /// to call from several threads (late callers wait for the join, then
  /// find nothing left to do). After `stop()`, `trySubmit` returns false.
  void stop() {
    {
      const std::scoped_lock lock(mutex_);
      stopping_ = true;
    }
    wake_.notify_all();
    const std::scoped_lock joinLock(joinMutex_);
    for (std::thread& t : workers_) t.join();
    workers_.clear();
  }

  unsigned threads() const { return threadCount_; }

  /// Jobs currently waiting in the queue (excludes running jobs).
  std::size_t queueDepth() const {
    const std::scoped_lock lock(mutex_);
    return queue_.size();
  }

  /// Jobs currently executing on a worker.
  std::size_t busy() const {
    const std::scoped_lock lock(mutex_);
    return busy_;
  }

  /// First exception a job let escape (null when none ever did).
  std::exception_ptr firstError() const {
    const std::scoped_lock lock(mutex_);
    return firstError_;
  }

private:
  void workerLoop() {
    for (;;) {
      std::function<void()> job;
      {
        std::unique_lock lock(mutex_);
        wake_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
        if (queue_.empty()) return; // stopping and fully drained
        job = std::move(queue_.front());
        queue_.pop_front();
        ++busy_;
      }
      try {
        job();
      } catch (...) {
        const std::scoped_lock lock(mutex_);
        if (!firstError_) firstError_ = std::current_exception();
      }
      {
        const std::scoped_lock lock(mutex_);
        --busy_;
      }
      idle_.notify_all();
    }
  }

  mutable std::mutex mutex_;
  std::mutex joinMutex_; ///< serialises concurrent stop() joins
  std::condition_variable wake_; ///< queue non-empty or stopping
  std::condition_variable idle_; ///< queue empty and no busy workers
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  unsigned threadCount_ = 0;
  std::size_t capacity_;
  std::size_t busy_ = 0;
  bool stopping_ = false;
  std::exception_ptr firstError_;
};

} // namespace cawo
