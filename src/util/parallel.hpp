#pragma once

#include <algorithm>
#include <atomic>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

/// \file parallel.hpp
/// Shared worker-pool helper: run an index-addressed job list across
/// hardware threads. Used by the suite runner and the CLI; determinism is
/// the caller's business (our jobs write to disjoint slots).

namespace cawo {

/// Invoke `fn(i)` for every i in [0, n) on up to `threads` workers
/// (0 = hardware concurrency). If a job throws, no further jobs are
/// started and the first exception is rethrown on the calling thread
/// after all workers have drained.
template <typename Fn>
void parallelFor(std::size_t n, unsigned threads, Fn&& fn) {
  if (n == 0) return;
  if (threads == 0) threads = std::thread::hardware_concurrency();
  if (threads == 0) threads = 1;
  threads = std::min<unsigned>(threads, static_cast<unsigned>(n));

  if (threads == 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }

  std::atomic<std::size_t> next{0};
  std::atomic<bool> failed{false};
  std::exception_ptr firstError;
  std::mutex errorMutex;

  auto worker = [&]() {
    while (!failed.load(std::memory_order_relaxed)) {
      const std::size_t i = next.fetch_add(1);
      if (i >= n) return;
      try {
        fn(i);
      } catch (...) {
        const std::scoped_lock lock(errorMutex);
        if (!failed.exchange(true)) firstError = std::current_exception();
      }
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(threads);
  for (unsigned t = 0; t < threads; ++t) pool.emplace_back(worker);
  for (auto& t : pool) t.join();
  if (firstError) std::rethrow_exception(firstError);
}

} // namespace cawo
