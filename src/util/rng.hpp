#pragma once

#include <cmath>
#include <cstdint>

#include "util/require.hpp"

/// \file rng.hpp
/// Deterministic, seedable random number generation.
///
/// We ship our own small generator (xoshiro256**, seeded via SplitMix64)
/// instead of `std::mt19937` + `std::*_distribution` because the standard
/// distributions are not reproducible across standard-library
/// implementations; every experiment in this repo must be bit-for-bit
/// reproducible from its 64-bit seed.

namespace cawo {

/// SplitMix64 — used to expand a single 64-bit seed into generator state.
class SplitMix64 {
public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

private:
  std::uint64_t state_;
};

/// xoshiro256** 1.0 by Blackman & Vigna — fast, high-quality, tiny state.
/// Satisfies UniformRandomBitGenerator so it can drive std algorithms.
class Rng {
public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x5eed0fCA2B0ULL) {
    SplitMix64 sm(seed);
    for (auto& s : s_) s = sm.next();
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~result_type{0}; }

  result_type operator()() { return next(); }

  std::uint64_t next() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform integer in [lo, hi] (inclusive). Uses Lemire-style rejection
  /// to avoid modulo bias.
  std::int64_t uniformInt(std::int64_t lo, std::int64_t hi) {
    CAWO_REQUIRE(lo <= hi, "uniformInt: empty range");
    const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
    if (span == 0) return static_cast<std::int64_t>(next()); // full range
    const std::uint64_t limit = max() - max() % span;
    std::uint64_t v = next();
    while (v >= limit) v = next();
    return lo + static_cast<std::int64_t>(v % span);
  }

  /// Uniform real in [0, 1).
  double uniform01() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Uniform real in [lo, hi).
  double uniformReal(double lo, double hi) {
    CAWO_REQUIRE(lo <= hi, "uniformReal: empty range");
    return lo + (hi - lo) * uniform01();
  }

  /// Standard normal via Marsaglia polar method (reproducible, no libm
  /// differences in trig functions across platforms).
  double normal(double mean = 0.0, double stddev = 1.0) {
    CAWO_REQUIRE(stddev >= 0.0, "normal: negative stddev");
    if (haveSpare_) {
      haveSpare_ = false;
      return mean + stddev * spare_;
    }
    double u, v, s;
    do {
      u = 2.0 * uniform01() - 1.0;
      v = 2.0 * uniform01() - 1.0;
      s = u * u + v * v;
    } while (s >= 1.0 || s == 0.0);
    const double factor = std::sqrt(-2.0 * std::log(s) / s);
    spare_ = v * factor;
    haveSpare_ = true;
    return mean + stddev * u * factor;
  }

  /// Positive integer drawn from Normal(mean, stddev), clamped to
  /// [minValue, +inf). Used for task and edge weights.
  std::int64_t normalPositiveInt(double mean, double stddev,
                                 std::int64_t minValue = 1) {
    const double d = normal(mean, stddev);
    auto r = static_cast<std::int64_t>(std::llround(d));
    return r < minValue ? minValue : r;
  }

  /// Derive an independent child generator (for parallel streams).
  Rng split() { return Rng(next() ^ 0x9e3779b97f4a7c15ULL); }

private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t s_[4]{};
  double spare_ = 0.0;
  bool haveSpare_ = false;
};

} // namespace cawo
