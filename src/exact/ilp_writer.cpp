#include "exact/ilp_writer.hpp"

#include <fstream>
#include <ostream>

#include "util/require.hpp"

namespace cawo {

namespace {

std::string su(TaskId u, Time t) {
  return "s_" + std::to_string(u) + "_" + std::to_string(t);
}
std::string eu(TaskId u, Time t) {
  return "e_" + std::to_string(u) + "_" + std::to_string(t);
}
std::string ru(TaskId u, Time t) {
  return "r_" + std::to_string(u) + "_" + std::to_string(t);
}

} // namespace

IlpStats writeIlp(std::ostream& out, const EnhancedGraph& gc,
                  const PowerProfile& profile, Time deadline) {
  CAWO_REQUIRE(deadline > 0, "deadline must be positive");
  CAWO_REQUIRE(profile.horizon() >= deadline,
               "profile must cover the deadline");
  const Time T = deadline;
  const TaskId N = gc.numNodes();

  IlpStats stats;
  std::size_t cid = 0;
  auto cname = [&cid]() { return "c" + std::to_string(++cid); };

  // Big-M: no schedule can draw more brown power per unit than the total
  // platform power (Appendix A.4).
  Power bigM = 0;
  for (ProcId p = 0; p < gc.numProcs(); ++p)
    bigM += gc.idlePower(p) + gc.workPower(p);
  if (bigM <= 0) bigM = 1;

  out << "\\ CaWoSched ILP — Appendix A.4 of the paper\n";
  out << "\\ N=" << N << " tasks, T=" << T << " time units, P="
      << gc.numProcs() << " processors, M=" << bigM << "\n";

  // Objective: minimise total brown power usage (Eq. before (5)).
  out << "Minimize\n obj:";
  for (Time t = 0; t < T; ++t) out << (t ? " + " : " ") << "bu_" << t;
  out << "\nSubject To\n";

  for (TaskId u = 0; u < N; ++u) {
    const Time len = gc.len(u);
    // (5) start exactly once, early enough to finish.
    out << ' ' << cname() << ":";
    for (Time t = 0; t + len <= T; ++t)
      out << (t ? " + " : " ") << su(u, t);
    out << " = 1\n";
    ++stats.numConstraints;
    // (6) never start too late (empty when len < 2).
    if (T - len + 1 <= T - 1) {
      out << ' ' << cname() << ":";
      bool first = true;
      for (Time t = T - len + 1; t < T; ++t) {
        out << (first ? " " : " + ") << su(u, t);
        first = false;
      }
      out << " = 0\n";
      ++stats.numConstraints;
    }
    // (7) no end before ω(u)−1.
    if (len >= 2) {
      out << ' ' << cname() << ":";
      bool first = true;
      for (Time t = 0; t + 2 <= len; ++t) {
        out << (first ? " " : " + ") << eu(u, t);
        first = false;
      }
      out << " = 0\n";
      ++stats.numConstraints;
    }
    // (8) end exactly once.
    out << ' ' << cname() << ":";
    {
      bool first = true;
      for (Time t = std::max<Time>(len - 1, 0); t < T; ++t) {
        out << (first ? " " : " + ") << eu(u, t);
        first = false;
      }
    }
    out << " = 1\n";
    ++stats.numConstraints;
    // (9) start/end alignment: s_{u,t} = e_{u,t+len-1}.
    for (Time t = 0; t + len <= T; ++t) {
      out << ' ' << cname() << ": " << su(u, t) << " - "
          << eu(u, t + len - 1) << " = 0\n";
      ++stats.numConstraints;
    }
    // (10) total running time equals ω(u).
    out << ' ' << cname() << ":";
    for (Time t = 0; t < T; ++t) out << (t ? " + " : " ") << ru(u, t);
    out << " = " << len << "\n";
    ++stats.numConstraints;
    // (11) running indicators cover the execution window.
    for (Time t = 0; t + len <= T; ++t) {
      for (Time k = t; k < t + len; ++k) {
        out << ' ' << cname() << ": " << ru(u, k) << " - " << su(u, t)
            << " >= 0\n";
        ++stats.numConstraints;
      }
    }
  }

  // (12) precedence: s_{v,t} <= sum_{l<t} e_{u,l}.
  for (TaskId u = 0; u < N; ++u) {
    for (TaskId v : gc.succs(u)) {
      for (Time t = 0; t + gc.len(v) <= T; ++t) {
        out << ' ' << cname() << ": " << su(v, t);
        for (Time l = 0; l < t; ++l) out << " - " << eu(u, l);
        out << " <= 0\n";
        ++stats.numConstraints;
      }
    }
  }

  // Power accounting per time unit.
  const Power totalIdle = gc.totalIdlePower();
  for (Time t = 0; t < T; ++t) {
    const Power green = profile.greenAt(t);
    // (23) gamma_t = Σ idle + Σ_u r_{u,t} · P_work^{proc(u)}.
    out << ' ' << cname() << ": gamma_" << t;
    for (TaskId u = 0; u < N; ++u)
      out << " - " << gc.workPower(gc.procOf(u)) << ' ' << ru(u, t);
    out << " = " << totalIdle << "\n";
    ++stats.numConstraints;
    // (16) bu_t >= gamma_t - G_t.
    out << ' ' << cname() << ": bu_" << t << " - gamma_" << t
        << " >= " << -green << "\n";
    // (17) bu_t <= gamma_t - G_t + M(1 - alpha_t).
    out << ' ' << cname() << ": bu_" << t << " - gamma_" << t << " + " << bigM
        << " alpha_" << t << " <= " << (bigM - green) << "\n";
    // (18) bu_t <= M·alpha_t.
    out << ' ' << cname() << ": bu_" << t << " - " << bigM << " alpha_" << t
        << " <= 0\n";
    // (19) gamma_t - G_t <= M·alpha_t.
    out << ' ' << cname() << ": gamma_" << t << " - " << bigM << " alpha_" << t
        << " <= " << green << "\n";
    // (20) gamma_t - G_t >= eps - M(1 - alpha_t), integer eps = 1.
    out << ' ' << cname() << ": gamma_" << t << " + " << bigM << " alpha_" << t
        << " >= " << (green + 1 - bigM) << "\n";
    // (22) gu_t + bu_t = gamma_t.
    out << ' ' << cname() << ": gu_" << t << " + bu_" << t << " - gamma_" << t
        << " = 0\n";
    stats.numConstraints += 6;
  }

  // Bounds: gu_t may not exceed the green budget (part of Eq. (13)).
  out << "Bounds\n";
  for (Time t = 0; t < T; ++t)
    out << " 0 <= gu_" << t << " <= " << profile.greenAt(t) << "\n";
  for (Time t = 0; t < T; ++t) out << " bu_" << t << " >= 0\n";
  for (Time t = 0; t < T; ++t) out << " gamma_" << t << " >= 0\n";

  out << "Generals\n";
  for (Time t = 0; t < T; ++t)
    out << " gu_" << t << " bu_" << t << " gamma_" << t << "\n";
  stats.numVariables += static_cast<std::size_t>(T) * 3;

  out << "Binaries\n";
  for (Time t = 0; t < T; ++t) out << " alpha_" << t << "\n";
  stats.numBinaries += static_cast<std::size_t>(T);
  for (TaskId u = 0; u < N; ++u) {
    for (Time t = 0; t < T; ++t)
      out << ' ' << su(u, t) << ' ' << eu(u, t) << ' ' << ru(u, t) << "\n";
    stats.numBinaries += static_cast<std::size_t>(T) * 3;
  }
  stats.numVariables += stats.numBinaries;
  out << "End\n";
  return stats;
}

IlpStats writeIlpFile(const std::string& path, const EnhancedGraph& gc,
                      const PowerProfile& profile, Time deadline) {
  std::ofstream out(path);
  CAWO_REQUIRE(out.good(), "cannot open ILP output file: " + path);
  return writeIlp(out, gc, profile, deadline);
}

} // namespace cawo
