#pragma once

#include <vector>

#include "core/enhanced_graph.hpp"
#include "core/power_profile.hpp"
#include "util/types.hpp"

/// \file three_partition.hpp
/// The reduction from 3-Partition used in the strong NP-completeness proof
/// of Theorem 4.3 (Appendix A.3): the class UCAS of instances with P
/// power-homogeneous processors (P_idle = 0, P_work = 1) and independent
/// tasks admits a zero-carbon schedule iff the 3-Partition instance is a
/// yes-instance. Reproducing the construction lets tests verify the
/// reduction's correctness on both yes- and no-instances.

namespace cawo {

struct ThreePartitionInstance {
  std::vector<Work> items; ///< 3n positive integers
  Work bound = 0;          ///< B with Σ items = n·B and B/4 < x < B/2
};

struct UcasInstance {
  EnhancedGraph gc;
  PowerProfile profile;
  Time deadline = 0;
};

/// Validate the 3-Partition preconditions (Σ = nB, B/4 < x_i < B/2).
/// Returns an empty string when valid, else a description.
std::string validateThreePartition(const ThreePartitionInstance& inst);

/// Build the UCAS scheduling instance of the reduction:
/// 3n unit-power processors, 3n independent tasks (task i on processor i
/// with length x_i), and 2n−1 alternating intervals — odd intervals of
/// length B with budget 1, even "separator" intervals of length 1 with
/// budget 0. Total carbon cost 0 is achievable iff the 3-Partition
/// instance has a solution.
UcasInstance buildUcasInstance(const ThreePartitionInstance& inst);

} // namespace cawo
