#include "exact/three_partition.hpp"

#include <numeric>

#include "util/require.hpp"

namespace cawo {

std::string validateThreePartition(const ThreePartitionInstance& inst) {
  if (inst.items.size() % 3 != 0 || inst.items.empty())
    return "item count must be a positive multiple of 3";
  const auto n = inst.items.size() / 3;
  const Work total =
      std::accumulate(inst.items.begin(), inst.items.end(), Work{0});
  if (total != static_cast<Work>(n) * inst.bound)
    return "sum of items must equal n*B";
  for (const Work x : inst.items) {
    if (4 * x <= inst.bound || 2 * x >= inst.bound)
      return "every item must satisfy B/4 < x < B/2";
  }
  return {};
}

UcasInstance buildUcasInstance(const ThreePartitionInstance& inst) {
  const std::string err = validateThreePartition(inst);
  CAWO_REQUIRE(err.empty(), "invalid 3-Partition instance: " + err);
  const auto m = inst.items.size(); // 3n tasks and processors
  const auto n = m / 3;

  std::vector<EnhancedGraph::Node> nodes(m);
  std::vector<std::vector<TaskId>> orders(m);
  for (std::size_t i = 0; i < m; ++i) {
    nodes[i].original = static_cast<TaskId>(i);
    nodes[i].proc = static_cast<ProcId>(i);
    nodes[i].len = inst.items[i];
    orders[i] = {static_cast<TaskId>(i)};
  }
  // Uniform power: P_idle = 0, P_work = 1 (Theorem 4.3).
  std::vector<Power> idle(m, 0);
  std::vector<Power> work(m, 1);

  UcasInstance out{
      EnhancedGraph::fromParts(std::move(nodes), {}, std::move(idle),
                               std::move(work), std::move(orders)),
      PowerProfile{}, 0};

  // Horizon: n intervals of length B with budget 1, separated by n−1
  // intervals of length 1 with budget 0. T = nB + n − 1.
  for (std::size_t k = 0; k < n; ++k) {
    out.profile.appendInterval(inst.bound, 1);
    if (k + 1 < n) out.profile.appendInterval(1, 0);
  }
  out.deadline = out.profile.horizon();
  return out;
}

} // namespace cawo
