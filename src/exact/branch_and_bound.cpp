#include "exact/branch_and_bound.hpp"

#include <algorithm>

#include "core/asap.hpp"
#include "core/carbon_cost.hpp"
#include "core/est_lst.hpp"
#include "core/power_timeline.hpp"
#include "util/require.hpp"
#include "util/timer.hpp"

namespace cawo {

namespace {

struct SearchState {
  const EnhancedGraph& gc;
  const PowerProfile& profile;
  Time deadline;
  const BnbOptions& opts;
  const std::vector<TaskId>& order; // topological
  std::vector<Time> lst;            // static latest starts
  PowerTimeline timeline;
  Schedule current;
  Schedule best;
  Cost bestCost;
  std::uint64_t nodes = 0;
  bool budgetExhausted = false;
  WallTimer timer;

  SearchState(const EnhancedGraph& g, const PowerProfile& p, Time d,
              const BnbOptions& o, const std::vector<Time>* initialEst,
              const std::vector<Time>* initialLst)
      : gc(g), profile(p), deadline(d), opts(o), order(g.topoOrder()),
        lst(initialLst ? *initialLst : computeLst(g, d)),
        timeline(p, g.totalIdlePower()), current(g.numNodes()),
        best(initialEst ? scheduleAsap(g, *initialEst) : scheduleAsap(g)),
        bestCost(evaluateCost(g, p, best)) {}

  void dfs(std::size_t depth) {
    if (budgetExhausted) return;
    if (++nodes > opts.maxNodes || timer.elapsedSec() > opts.timeLimitSec) {
      budgetExhausted = true;
      return;
    }
    if (timeline.totalCost() >= bestCost) return; // monotone lower bound
    if (depth == order.size()) {
      bestCost = timeline.totalCost();
      best = current;
      return;
    }
    const TaskId v = order[depth];
    const Time len = gc.len(v);
    const Power w = gc.workPower(gc.procOf(v));

    Time estDyn = 0;
    for (TaskId u : gc.preds(v))
      estDyn = std::max(estDyn, current.end(u, gc));
    const Time latest = lst[static_cast<std::size_t>(v)];

    for (Time t = estDyn; t <= latest; ++t) {
      timeline.addLoad(t, t + len, w);
      current.setStart(v, t);
      dfs(depth + 1);
      timeline.removeLoad(t, t + len, w);
      if (budgetExhausted) return;
    }
  }
};

} // namespace

BnbResult solveExact(const EnhancedGraph& gc, const PowerProfile& profile,
                     Time deadline, const BnbOptions& opts,
                     const std::vector<Time>* initialEst,
                     const std::vector<Time>* initialLst) {
  CAWO_REQUIRE(deadline > 0, "deadline must be positive");
  CAWO_REQUIRE(profile.horizon() >= deadline,
               "profile must cover the deadline");
  CAWO_REQUIRE((initialEst ? asapMakespan(gc, *initialEst)
                           : asapMakespan(gc)) <= deadline,
               "infeasible instance: deadline below ASAP makespan");

  SearchState state(gc, profile, deadline, opts, initialEst, initialLst);
  state.dfs(0);

  BnbResult res;
  res.schedule = state.best;
  res.cost = state.bestCost;
  res.provedOptimal = !state.budgetExhausted;
  res.nodesExplored = state.nodes;
  return res;
}

} // namespace cawo
