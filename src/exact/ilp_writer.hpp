#pragma once

#include <iosfwd>
#include <string>

#include "core/enhanced_graph.hpp"
#include "core/power_profile.hpp"
#include "util/types.hpp"

/// \file ilp_writer.hpp
/// Emits the integer linear program of Appendix A.4 in CPLEX LP format so
/// that the exact formulation can be solved with an external solver
/// (Gurobi, CPLEX, HiGHS, CBC, ...). This documents the paper's ILP
/// faithfully; inside this repo the optimum is computed by the
/// branch-and-bound solver instead (see DESIGN.md, substitutions).
///
/// Variables (one per time unit t in [0, T)):
///   gu_t, bu_t      — green / brown power drawn (integer ≥ 0)
///   gamma_t         — total platform power (integer ≥ 0)
///   alpha_t         — 1 iff brown power is needed (binary)
/// and per (node u, time t):
///   s_u_t, e_u_t, r_u_t — start / end / running indicators (binary).
///
/// Constraints are numbered as in the paper: (5)-(12) task placement and
/// precedence, (15)-(20) the Big-M linearisation of bu_t = max(0, γ_t−G_t),
/// (21)-(22) green power accounting, (23) total power.

namespace cawo {

struct IlpStats {
  std::size_t numVariables = 0;
  std::size_t numConstraints = 0;
  std::size_t numBinaries = 0;
};

/// Write the full model to `out`; returns model-size statistics.
IlpStats writeIlp(std::ostream& out, const EnhancedGraph& gc,
                  const PowerProfile& profile, Time deadline);

/// Convenience: write to a file; throws on I/O failure.
IlpStats writeIlpFile(const std::string& path, const EnhancedGraph& gc,
                      const PowerProfile& profile, Time deadline);

} // namespace cawo
