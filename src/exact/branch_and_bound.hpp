#pragma once

#include <cstdint>

#include "core/enhanced_graph.hpp"
#include "core/power_profile.hpp"
#include "core/schedule.hpp"
#include "util/types.hpp"

/// \file branch_and_bound.hpp
/// Exact solver over integer start times — our substitute for the paper's
/// Gurobi ILP (Appendix A.4); see DESIGN.md for the substitution argument.
///
/// Tasks are placed in topological order; each task tries every integer
/// start time within its dynamically tightened [EST, LST] window. The
/// carbon cost of the partial schedule is a monotone lower bound (adding a
/// task can only raise the power at any time unit), so pruning against the
/// incumbent is exact. The search space equals the ILP's feasible region,
/// hence the returned optimum matches the ILP optimum.

namespace cawo {

struct BnbOptions {
  std::uint64_t maxNodes = 200'000'000; ///< search-node budget
  double timeLimitSec = 120.0;          ///< wall-clock budget
};

struct BnbResult {
  Schedule schedule;
  Cost cost = 0;
  bool provedOptimal = false;
  std::uint64_t nodesExplored = 0;
};

/// Solve the instance to optimality (within the given budgets). If a budget
/// is exhausted, the best incumbent found so far is returned with
/// `provedOptimal == false`. `initialEst`/`initialLst` optionally inject
/// the precomputed initial windows (e.g. from a shared `SolveContext`) so
/// the feasibility check, ASAP incumbent and static latest starts skip
/// their Kahn passes; when present they must equal `computeEst` /
/// `computeLst` output for (gc, deadline).
BnbResult solveExact(const EnhancedGraph& gc, const PowerProfile& profile,
                     Time deadline, const BnbOptions& opts = {},
                     const std::vector<Time>* initialEst = nullptr,
                     const std::vector<Time>* initialLst = nullptr);

} // namespace cawo
