#include "exact/single_proc_dp.hpp"

#include <algorithm>

#include "util/require.hpp"

namespace cawo {

namespace {

/// Prefix sums of the effective cost eff(t) (see header) over the horizon,
/// evaluated lazily per interval: effsum(t) = Σ_{u < t} eff(u) in O(log J).
class EffCost {
public:
  EffCost(const PowerProfile& profile, Power idle, Power work)
      : profile_(profile) {
    const auto ivs = profile.intervals();
    perUnit_.reserve(ivs.size());
    cum_.reserve(ivs.size() + 1);
    cum_.push_back(0);
    for (const Interval& iv : ivs) {
      const Power busy = std::max<Power>(idle + work - iv.green, 0);
      const Power idleOver = std::max<Power>(idle - iv.green, 0);
      const Power eff = busy - idleOver;
      perUnit_.push_back(eff);
      cum_.push_back(cum_.back() + static_cast<Cost>(eff) * iv.length());
    }
  }

  /// Σ_{u=0}^{t-1} eff(u), for t in [0, horizon].
  Cost effsum(Time t) const {
    if (t <= 0) return 0;
    if (t >= profile_.horizon()) return cum_.back();
    const std::size_t j = profile_.indexAt(t);
    const Interval& iv = profile_.interval(j);
    return cum_[j] + static_cast<Cost>(perUnit_[j]) * (t - iv.begin);
  }

  /// Cost of executing a task of length `len` so that it ends at `t`.
  Cost execCost(Time len, Time t) const { return effsum(t) - effsum(t - len); }

private:
  const PowerProfile& profile_;
  std::vector<Power> perUnit_;
  std::vector<Cost> cum_;
};

void checkInstance(const SingleProcInstance& inst, const PowerProfile& profile,
                   Time deadline) {
  CAWO_REQUIRE(deadline > 0, "deadline must be positive");
  CAWO_REQUIRE(profile.horizon() >= deadline,
               "profile must cover the deadline");
  CAWO_REQUIRE(inst.idlePower >= 0 && inst.workPower >= 0,
               "negative power values");
  Time total = 0;
  for (Time len : inst.lens) {
    CAWO_REQUIRE(len >= 0, "negative task length");
    total += len;
  }
  CAWO_REQUIRE(total <= deadline, "tasks cannot fit before the deadline");
}

} // namespace

SingleProcInstance singleProcInstanceFrom(const EnhancedGraph& gc) {
  CAWO_REQUIRE(gc.numProcs() == 1, "instance must have a single processor");
  SingleProcInstance inst;
  inst.idlePower = gc.idlePower(0);
  inst.workPower = gc.workPower(0);
  for (TaskId v : gc.procOrder(0)) inst.lens.push_back(gc.len(v));
  return inst;
}

SingleProcResult solveSingleProcPseudo(const SingleProcInstance& inst,
                                       const PowerProfile& profile,
                                       Time deadline) {
  checkInstance(inst, profile, deadline);
  const EffCost eff(profile, inst.idlePower, inst.workPower);
  const std::size_t n = inst.lens.size();
  const Cost base = profile.idleFloorCost(inst.idlePower);

  SingleProcResult res;
  if (n == 0) {
    res.cost = base;
    return res;
  }

  const auto T = static_cast<std::size_t>(deadline);
  // g[i][t] = min cost (eff part) of tasks 0..i with task i ending exactly
  // at t; INF where infeasible. Kept as full tables for easy backtracking —
  // this solver targets the small instances of the optimality study.
  std::vector<std::vector<Cost>> g(n, std::vector<Cost>(T + 1, kCostInfinity));
  std::vector<Time> prefix(n + 1, 0);
  for (std::size_t i = 0; i < n; ++i) prefix[i + 1] = prefix[i] + inst.lens[i];

  // h[t] = min over s <= t of g[i-1][s]; rolls per task.
  std::vector<Cost> h(T + 1, 0); // task "-1" ends at any s with cost 0
  for (std::size_t i = 0; i < n; ++i) {
    const Time len = inst.lens[i];
    for (Time t = prefix[i + 1]; t <= deadline; ++t) {
      const Cost before = h[static_cast<std::size_t>(t - len)];
      if (before >= kCostInfinity) continue;
      g[i][static_cast<std::size_t>(t)] = before + eff.execCost(len, t);
    }
    // Fold g[i] into the next prefix-min table.
    Cost running = kCostInfinity;
    for (Time t = 0; t <= deadline; ++t) {
      running = std::min(running, g[i][static_cast<std::size_t>(t)]);
      h[static_cast<std::size_t>(t)] = running;
    }
  }

  // Backtrack: find the optimal end of the last task, then walk backwards.
  Cost best = kCostInfinity;
  Time end = 0;
  for (Time t = prefix[n]; t <= deadline; ++t) {
    if (g[n - 1][static_cast<std::size_t>(t)] < best) {
      best = g[n - 1][static_cast<std::size_t>(t)];
      end = t;
    }
  }
  CAWO_ASSERT(best < kCostInfinity, "DP found no feasible schedule");

  res.starts.assign(n, 0);
  Time curEnd = end;
  for (std::size_t i = n; i-- > 0;) {
    res.starts[i] = curEnd - inst.lens[i];
    if (i == 0) break;
    // Choose the best end for task i-1 not exceeding the current start.
    Cost bestPrev = kCostInfinity;
    Time prevEnd = 0;
    const Cost needed = g[i][static_cast<std::size_t>(curEnd)] -
                        eff.execCost(inst.lens[i], curEnd);
    for (Time s = prefix[i]; s <= res.starts[i]; ++s) {
      const Cost c = g[i - 1][static_cast<std::size_t>(s)];
      if (c < bestPrev) {
        bestPrev = c;
        prevEnd = s;
        if (c == needed) break; // matches the DP value — earliest such end
      }
    }
    CAWO_ASSERT(bestPrev < kCostInfinity, "DP backtracking failed");
    curEnd = prevEnd;
  }
  res.cost = base + best;
  return res;
}

std::vector<Time> candidateEndTimes(const SingleProcInstance& inst,
                                    const PowerProfile& profile, Time deadline,
                                    std::size_t taskIndex) {
  const std::size_t n = inst.lens.size();
  CAWO_REQUIRE(taskIndex < n, "task index out of range");
  std::vector<Time> prefix(n + 1, 0);
  for (std::size_t i = 0; i < n; ++i) prefix[i + 1] = prefix[i] + inst.lens[i];

  const Time minEnd = prefix[taskIndex + 1];
  const Time maxEnd = deadline - (prefix[n] - prefix[taskIndex + 1]);

  std::vector<Time> cands;
  std::vector<Time> boundaries = profile.boundaries();
  // Boundaries beyond the deadline are irrelevant (the profile horizon may
  // exceed the deadline); keep those <= deadline plus the deadline itself.
  boundaries.erase(std::remove_if(boundaries.begin(), boundaries.end(),
                                  [&](Time b) { return b > deadline; }),
                   boundaries.end());
  if (std::find(boundaries.begin(), boundaries.end(), deadline) ==
      boundaries.end())
    boundaries.push_back(deadline);

  for (std::size_t r = 0; r <= taskIndex; ++r) {
    for (std::size_t s = taskIndex; s < n; ++s) {
      // Block of tasks r..s containing taskIndex.
      for (const Time e : boundaries) {
        // Block starts at e → task ends at e + (prefix[i+1] − prefix[r]).
        const Time endA = e + (prefix[taskIndex + 1] - prefix[r]);
        if (endA >= minEnd && endA <= maxEnd) cands.push_back(endA);
        // Block ends at e → task ends at e − (prefix[s+1] − prefix[i+1]).
        const Time endB = e - (prefix[s + 1] - prefix[taskIndex + 1]);
        if (endB >= minEnd && endB <= maxEnd) cands.push_back(endB);
      }
    }
  }
  std::sort(cands.begin(), cands.end());
  cands.erase(std::unique(cands.begin(), cands.end()), cands.end());
  return cands;
}

SingleProcResult solveSingleProcPoly(const SingleProcInstance& inst,
                                     const PowerProfile& profile,
                                     Time deadline) {
  checkInstance(inst, profile, deadline);
  const EffCost eff(profile, inst.idlePower, inst.workPower);
  const std::size_t n = inst.lens.size();
  const Cost base = profile.idleFloorCost(inst.idlePower);

  SingleProcResult res;
  if (n == 0) {
    res.cost = base;
    return res;
  }

  // Per-task candidate end times (E'), each with its DP cost and a back
  // pointer into the previous task's candidate list.
  struct Entry {
    Time end;
    Cost cost;
    std::size_t parent;
  };
  std::vector<std::vector<Entry>> dp(n);

  std::vector<Time> prevEnds; // ends of task i-1, ascending
  std::vector<Cost> prevCosts;
  for (std::size_t i = 0; i < n; ++i) {
    const std::vector<Time> cands =
        candidateEndTimes(inst, profile, deadline, i);
    CAWO_ASSERT(!cands.empty(), "empty candidate end-time set");
    const Time len = inst.lens[i];
    auto& cur = dp[i];
    cur.reserve(cands.size());

    if (i == 0) {
      for (const Time t : cands)
        cur.push_back(Entry{t, eff.execCost(len, t), 0});
    } else {
      // Two-pointer prefix-min over the previous task's candidates.
      std::size_t p = 0;
      Cost bestPrev = kCostInfinity;
      std::size_t bestIdx = 0;
      for (const Time t : cands) {
        while (p < prevEnds.size() && prevEnds[p] <= t - len) {
          if (prevCosts[p] < bestPrev) {
            bestPrev = prevCosts[p];
            bestIdx = p;
          }
          ++p;
        }
        if (bestPrev >= kCostInfinity) continue; // no feasible predecessor
        cur.push_back(Entry{t, bestPrev + eff.execCost(len, t), bestIdx});
      }
    }
    CAWO_ASSERT(!cur.empty(), "no feasible candidate for task");
    prevEnds.clear();
    prevCosts.clear();
    prevEnds.reserve(cur.size());
    prevCosts.reserve(cur.size());
    for (const Entry& e : cur) {
      prevEnds.push_back(e.end);
      prevCosts.push_back(e.cost);
    }
  }

  // Pick the best candidate of the last task and backtrack.
  std::size_t bestIdx = 0;
  for (std::size_t idx = 1; idx < dp[n - 1].size(); ++idx)
    if (dp[n - 1][idx].cost < dp[n - 1][bestIdx].cost) bestIdx = idx;

  res.starts.assign(n, 0);
  std::size_t idx = bestIdx;
  for (std::size_t i = n; i-- > 0;) {
    res.starts[i] = dp[i][idx].end - inst.lens[i];
    idx = dp[i][idx].parent;
  }
  res.cost = base + dp[n - 1][bestIdx].cost;
  return res;
}

} // namespace cawo
