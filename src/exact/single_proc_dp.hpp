#pragma once

#include <vector>

#include "core/enhanced_graph.hpp"
#include "core/power_profile.hpp"
#include "util/types.hpp"

/// \file single_proc_dp.hpp
/// The polynomial-time dynamic program for a single processor
/// (Theorem 4.1 / Lemma 4.2 and Appendix A.2 of the paper).
///
/// The tasks v_1..v_n execute in a fixed order on one processor. Because
/// the processor runs at most one task at a time, the carbon cost
/// decomposes per time unit into a schedule-independent floor
/// `max(P_idle − G(t), 0)` plus, while a task runs, an *effective cost*
///   eff(t) = max(P_idle + P_work − G(t), 0) − max(P_idle − G(t), 0) ≥ 0.
/// The DP minimises the sum of eff over all execution windows.
///
/// Two variants are provided:
///  * `solveSingleProcPseudo` — the O(n·T) pseudo-polynomial DP over all
///    integer end times (Section 4.1, Eq. (1), with a prefix-min).
///  * `solveSingleProcPoly`  — the fully polynomial DP restricted to the
///    end-time set E' of size O(n³·J) derived from interval-aligned blocks
///    (Lemma 4.2); optimal because an optimal E-schedule always exists.

namespace cawo {

struct SingleProcInstance {
  std::vector<Time> lens; ///< task lengths in their fixed execution order
  Power idlePower = 0;
  Power workPower = 0;
};

/// Extract a single-processor instance from an enhanced graph that lives on
/// exactly one processor (throws otherwise). The task order is the fixed
/// per-processor order.
SingleProcInstance singleProcInstanceFrom(const EnhancedGraph& gc);

struct SingleProcResult {
  Cost cost = 0;              ///< total carbon cost incl. the idle floor
  std::vector<Time> starts;   ///< start time per task, in instance order
};

/// Pseudo-polynomial DP over every integer end time in [0, deadline].
SingleProcResult solveSingleProcPseudo(const SingleProcInstance& inst,
                                       const PowerProfile& profile,
                                       Time deadline);

/// Fully polynomial DP restricted to the end-time set E'.
SingleProcResult solveSingleProcPoly(const SingleProcInstance& inst,
                                     const PowerProfile& profile,
                                     Time deadline);

/// The candidate end-time set E'_i for task `i` (exposed for tests):
/// all end times implied by some block r ≤ i ≤ s aligned to start or end at
/// an interval boundary, intersected with the feasibility window.
std::vector<Time> candidateEndTimes(const SingleProcInstance& inst,
                                    const PowerProfile& profile, Time deadline,
                                    std::size_t taskIndex);

} // namespace cawo
