#include "sim/runner.hpp"

#include <atomic>
#include <mutex>
#include <thread>

#include "core/asap.hpp"
#include "core/carbon_cost.hpp"
#include "util/require.hpp"
#include "util/timer.hpp"

namespace cawo {

std::vector<std::string> algorithmNames() {
  std::vector<std::string> names{"ASAP"};
  for (const VariantSpec& v : allVariants()) names.push_back(v.name());
  return names;
}

InstanceResult runAllOnInstance(const Instance& instance,
                                const CaWoParams& params) {
  InstanceResult result;
  result.spec = instance.spec;
  result.deadline = instance.deadline;
  result.numNodes = instance.gc.numNodes();

  {
    WallTimer timer;
    const Schedule s = scheduleAsap(instance.gc);
    const double ms = timer.elapsedMs();
    const ValidationResult ok =
        validateSchedule(instance.gc, s, instance.deadline);
    CAWO_ASSERT(ok.ok, "ASAP produced an invalid schedule: " + ok.message);
    result.runs.push_back(
        {"ASAP", evaluateCost(instance.gc, instance.profile, s), ms});
  }

  for (const VariantSpec& v : allVariants()) {
    WallTimer timer;
    const Schedule s =
        runVariant(instance.gc, instance.profile, instance.deadline, v, params);
    const double ms = timer.elapsedMs();
    const ValidationResult ok =
        validateSchedule(instance.gc, s, instance.deadline);
    CAWO_ASSERT(ok.ok, "variant " + v.name() +
                           " produced an invalid schedule: " + ok.message);
    result.runs.push_back(
        {v.name(), evaluateCost(instance.gc, instance.profile, s), ms});
  }
  return result;
}

std::vector<InstanceResult> runSuite(const std::vector<InstanceSpec>& specs,
                                     const CaWoParams& params,
                                     unsigned threads) {
  std::vector<InstanceResult> results(specs.size());
  if (threads == 0) threads = std::thread::hardware_concurrency();
  if (threads == 0) threads = 1;
  threads = std::min<unsigned>(threads,
                               static_cast<unsigned>(specs.size() ? specs.size() : 1));

  std::atomic<std::size_t> next{0};
  std::atomic<bool> failed{false};
  std::string firstError;
  std::mutex errorMutex;

  auto worker = [&]() {
    while (!failed.load(std::memory_order_relaxed)) {
      const std::size_t i = next.fetch_add(1);
      if (i >= specs.size()) return;
      try {
        const Instance instance = buildInstance(specs[i]);
        results[i] = runAllOnInstance(instance, params);
      } catch (const std::exception& e) {
        const std::scoped_lock lock(errorMutex);
        if (!failed.exchange(true)) firstError = e.what();
      }
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(threads);
  for (unsigned t = 0; t < threads; ++t) pool.emplace_back(worker);
  for (auto& t : pool) t.join();
  CAWO_REQUIRE(!failed.load(), "suite run failed: " + firstError);
  return results;
}

std::vector<InstanceSpec> fullGrid(WorkflowFamily family, int targetTasks,
                                   int nodesPerType, std::uint64_t seed,
                                   int numIntervals) {
  std::vector<InstanceSpec> specs;
  for (const Scenario sc :
       {Scenario::S1, Scenario::S2, Scenario::S3, Scenario::S4}) {
    for (const double f : {1.0, 1.5, 2.0, 3.0}) {
      InstanceSpec spec;
      spec.family = family;
      spec.targetTasks = targetTasks;
      spec.nodesPerType = nodesPerType;
      spec.scenario = sc;
      spec.deadlineFactor = f;
      spec.numIntervals = numIntervals;
      spec.seed = seed;
      specs.push_back(spec);
    }
  }
  return specs;
}

} // namespace cawo
