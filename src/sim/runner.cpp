#include "sim/runner.hpp"

#include "core/solve_context.hpp"
#include "util/parallel.hpp"
#include "util/require.hpp"

namespace cawo {

std::vector<std::string> suiteSolverNames() {
  std::vector<std::string> names{"ASAP"};
  for (const VariantSpec& v : allVariants()) names.push_back(v.name());
  return names;
}

std::vector<std::string> algorithmNames() { return suiteSolverNames(); }

SolverOptions solverOptionsFrom(const CaWoParams& params) {
  SolverOptions options;
  options.setInt("block-size", params.blockSize);
  options.setInt("ls-radius", params.lsRadius);
  return options;
}

bool solverFitsInstance(const SolverInfo& info, const Instance& instance) {
  return !(info.singleProcOnly && instance.gc.numProcs() != 1);
}

InstanceResult runSolversOnInstance(const Instance& instance,
                                    const std::vector<std::string>& solvers,
                                    const SolverOptions& options) {
  InstanceResult result;
  result.spec = instance.spec;
  result.deadline = instance.deadline;
  result.numNodes = instance.gc.numNodes();
  result.runs.reserve(solvers.size());

  // One shared context per instance: every selected solver reuses the
  // memoized initial windows, score orders and refined interval sets
  // (identical results, computed once instead of once per solver).
  const SolveContext context(instance.gc, instance.profile,
                             instance.deadline);

  SolveRequest request;
  request.gc = &instance.gc;
  request.profile = &instance.profile;
  request.deadline = instance.deadline;
  request.graph = &instance.graph;
  request.platform = &instance.platform;
  request.context = &context;
  request.options = options;

  const SolverRegistry& registry = SolverRegistry::global();
  for (const std::string& name : solvers) {
    const SolverPtr solver = registry.create(name);
    // Solvers whose capabilities don't fit the instance are skipped, so
    // broad selections ("all") stay usable on any suite: the
    // single-processor DP cannot run on a multi-processor graph.
    if (!solverFitsInstance(solver->info(), instance)) continue;
    const SolveResult solved = solver->solve(request);
    CAWO_ASSERT(solved.feasible, "solver " + name +
                                     " produced an invalid schedule: " +
                                     solved.validation.message);
    result.runs.push_back(
        {name, solved.cost, solved.wallMs, solved.provedOptimal});
  }
  return result;
}

InstanceResult runAllOnInstance(const Instance& instance,
                                const CaWoParams& params) {
  return runSolversOnInstance(instance, suiteSolverNames(),
                              solverOptionsFrom(params));
}

std::vector<InstanceResult> runSuite(const std::vector<InstanceSpec>& specs,
                                     const std::vector<std::string>& solvers,
                                     const SolverOptions& options,
                                     unsigned threads) {
  std::vector<InstanceResult> results(specs.size());
  try {
    parallelFor(specs.size(), threads, [&](std::size_t i) {
      const Instance instance = buildInstance(specs[i]);
      results[i] = runSolversOnInstance(instance, solvers, options);
    });
  } catch (const std::exception& e) {
    CAWO_REQUIRE(false, "suite run failed: " + std::string(e.what()));
  }
  return results;
}

std::vector<InstanceResult> runSuite(const std::vector<InstanceSpec>& specs,
                                     const CaWoParams& params,
                                     unsigned threads) {
  return runSuite(specs, suiteSolverNames(), solverOptionsFrom(params),
                  threads);
}

std::vector<InstanceSpec> fullGrid(WorkflowFamily family, int targetTasks,
                                   int nodesPerType, std::uint64_t seed,
                                   int numIntervals) {
  std::vector<InstanceSpec> specs;
  for (const std::string& sc : paperScenarioNames()) {
    for (const double f : {1.0, 1.5, 2.0, 3.0}) {
      InstanceSpec spec;
      spec.family = family;
      spec.targetTasks = targetTasks;
      spec.nodesPerType = nodesPerType;
      spec.scenario = sc;
      spec.deadlineFactor = f;
      spec.numIntervals = numIntervals;
      spec.seed = seed;
      specs.push_back(spec);
    }
  }
  return specs;
}

} // namespace cawo
