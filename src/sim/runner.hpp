#pragma once

#include <string>
#include <vector>

#include "core/cawosched.hpp"
#include "sim/instance.hpp"

/// \file runner.hpp
/// Runs ASAP plus the 16 CaWoSched variants on experiment instances,
/// validating every schedule and recording carbon cost and running time.
/// Instances are processed in parallel across hardware threads; every run
/// is deterministic, so the parallelism never changes the results.

namespace cawo {

struct AlgoRun {
  std::string algorithm;
  Cost cost = 0;
  double millis = 0.0;
};

struct InstanceResult {
  InstanceSpec spec;
  Time deadline = 0;
  TaskId numNodes = 0; ///< nodes of the enhanced graph (incl. comm tasks)
  std::vector<AlgoRun> runs; ///< index-aligned with the algorithm list
};

/// "ASAP" followed by the 16 variant names in canonical order.
std::vector<std::string> algorithmNames();

/// Run all algorithms on one (already built) instance.
InstanceResult runAllOnInstance(const Instance& instance,
                                const CaWoParams& params = {});

/// Build every instance and run all algorithms; `threads == 0` means
/// hardware concurrency. Results are ordered like `specs`.
std::vector<InstanceResult> runSuite(const std::vector<InstanceSpec>& specs,
                                     const CaWoParams& params = {},
                                     unsigned threads = 0);

/// The paper's default experiment grid: every (scenario × deadline factor)
/// combination — 16 power profiles per workflow/cluster pair.
std::vector<InstanceSpec> fullGrid(WorkflowFamily family, int targetTasks,
                                   int nodesPerType, std::uint64_t seed,
                                   int numIntervals = 24);

} // namespace cawo
