#pragma once

#include <string>
#include <vector>

#include "core/cawosched.hpp"
#include "sim/instance.hpp"
#include "solver/registry.hpp"

/// \file runner.hpp
/// Registry-driven experiment runner: any selection of registered solvers
/// is run on experiment instances, every schedule is validated, and carbon
/// cost plus running time are recorded. Instances are processed in
/// parallel across hardware threads; every run is deterministic, so the
/// parallelism never changes the results. All solvers selected for one
/// instance share a `SolveContext` (memoized initial windows, refined
/// intervals, score orders), so per-instance precomputation is paid once
/// per instance, not once per solver.
///
/// The paper's figure set uses the *suite selection* — "ASAP" followed by
/// the 16 CaWoSched variants in canonical order; `algorithmNames()` and
/// `runAllOnInstance()` are thin compatibility wrappers over it, so the
/// bench figure numbers are unchanged by the registry layer.

namespace cawo {

struct AlgoRun {
  std::string algorithm;
  Cost cost = 0;
  double millis = 0.0;
  bool provedOptimal = false; ///< exact solvers only
};

struct InstanceResult {
  InstanceSpec spec;
  Time deadline = 0;
  TaskId numNodes = 0; ///< nodes of the enhanced graph (incl. comm tasks)
  /// One entry per *compatible* selected solver, in selection order
  /// (capability-mismatched solvers are skipped, see below).
  std::vector<AlgoRun> runs;
};

/// The bench/figure selection: "ASAP" followed by the 16 CaWoSched
/// variants in canonical order.
std::vector<std::string> suiteSolverNames();

/// Compatibility alias for `suiteSolverNames()`.
std::vector<std::string> algorithmNames();

/// True if a solver with these capabilities can run on the instance —
/// e.g. the single-processor "dp" does not fit a multi-processor enhanced
/// graph. Shared by the suite runner and the campaign engine so broad
/// selections ("all") skip the same solvers everywhere.
bool solverFitsInstance(const SolverInfo& info, const Instance& instance);

/// Run the given registry solvers on one (already built) instance.
/// Solvers whose capabilities don't fit the instance (e.g. the
/// single-processor "dp" on a multi-processor graph) are skipped, so
/// broad selections like "all" work on any suite. Every produced schedule
/// must validate; an invalid schedule is a library bug and throws
/// InvariantError.
InstanceResult runSolversOnInstance(const Instance& instance,
                                    const std::vector<std::string>& solvers,
                                    const SolverOptions& options = {});

/// Compatibility wrapper: the suite selection with `params` mapped onto
/// the solver options bag.
InstanceResult runAllOnInstance(const Instance& instance,
                                const CaWoParams& params = {});

/// Build every instance and run the given solvers; `threads == 0` means
/// hardware concurrency. Results are ordered like `specs`.
std::vector<InstanceResult> runSuite(const std::vector<InstanceSpec>& specs,
                                     const std::vector<std::string>& solvers,
                                     const SolverOptions& options = {},
                                     unsigned threads = 0);

/// Compatibility wrapper: the suite selection with `params` mapped onto
/// the solver options bag.
std::vector<InstanceResult> runSuite(const std::vector<InstanceSpec>& specs,
                                     const CaWoParams& params = {},
                                     unsigned threads = 0);

/// Translate legacy CaWoSched tuning parameters into the options bag
/// understood by the CaWoSched solver adapters.
SolverOptions solverOptionsFrom(const CaWoParams& params);

/// The paper's default experiment grid: every (scenario × deadline factor)
/// combination — 16 power profiles per workflow/cluster pair.
std::vector<InstanceSpec> fullGrid(WorkflowFamily family, int targetTasks,
                                   int nodesPerType, std::uint64_t seed,
                                   int numIntervals = 24);

} // namespace cawo
