#include "sim/table.hpp"

#include <algorithm>
#include <cmath>
#include <ostream>

#include "util/require.hpp"
#include "util/strings.hpp"

namespace cawo {

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  CAWO_REQUIRE(!headers_.empty(), "table needs at least one column");
}

void TextTable::addRow(std::vector<std::string> cells) {
  CAWO_REQUIRE(cells.size() == headers_.size(),
               "row width does not match header");
  rows_.push_back(std::move(cells));
}

void TextTable::print(std::ostream& out) const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c)
    width[c] = headers_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      width[c] = std::max(width[c], row[c].size());

  auto printRow = [&](const std::vector<std::string>& row) {
    out << "|";
    for (std::size_t c = 0; c < row.size(); ++c)
      out << ' ' << padRight(row[c], width[c]) << " |";
    out << "\n";
  };
  auto printSep = [&]() {
    out << "+";
    for (std::size_t c = 0; c < width.size(); ++c)
      out << std::string(width[c] + 2, '-') << "+";
    out << "\n";
  };

  printSep();
  printRow(headers_);
  printSep();
  for (const auto& row : rows_) printRow(row);
  printSep();
}

void printBarChart(std::ostream& out, const std::string& title,
                   const std::vector<std::string>& labels,
                   const std::vector<double>& values, int barWidth,
                   int precision) {
  CAWO_REQUIRE(labels.size() == values.size(), "labels/values mismatch");
  if (!title.empty()) out << title << "\n";
  std::size_t labelWidth = 0;
  double maxValue = 0.0;
  for (const auto& l : labels) labelWidth = std::max(labelWidth, l.size());
  for (const double v : values) maxValue = std::max(maxValue, v);
  for (std::size_t i = 0; i < labels.size(); ++i) {
    const int bars =
        maxValue > 0.0
            ? static_cast<int>(std::lround(values[i] / maxValue * barWidth))
            : 0;
    out << "  " << padRight(labels[i], labelWidth) << "  "
        << padLeft(formatFixed(values[i], precision), precision + 6) << "  "
        << std::string(static_cast<std::size_t>(std::max(bars, 0)), '#')
        << "\n";
  }
}

void printHeading(std::ostream& out, const std::string& text) {
  out << "\n" << std::string(text.size() + 4, '=') << "\n"
      << "| " << text << " |\n"
      << std::string(text.size() + 4, '=') << "\n";
}

} // namespace cawo
