#pragma once

#include <string>
#include <vector>

#include "sim/runner.hpp"
#include "util/types.hpp"

/// \file stats.hpp
/// Statistics used by the paper's evaluation figures: competition rankings
/// (Fig. 1), performance profiles (Figs. 2/3/17), cost ratios vs the ASAP
/// baseline with medians and boxplots (Figs. 4/5/6/14/15/16), and basic
/// descriptive statistics (Table 2).

namespace cawo {

/// costs[i][a] = carbon cost of algorithm a on instance i.
struct CostMatrix {
  std::vector<std::string> algorithms;
  std::vector<std::vector<Cost>> costs;

  std::size_t numInstances() const { return costs.size(); }
  std::size_t numAlgorithms() const { return algorithms.size(); }
};

/// Assemble the matrix from suite results (algorithms in run order).
CostMatrix toCostMatrix(const std::vector<InstanceResult>& results);

/// Competition ranking ("1224"): on each instance an algorithm's rank is
/// 1 + (number of algorithms with strictly smaller cost). Returns
/// counts[a][r-1] = number of instances where algorithm a has rank r.
std::vector<std::vector<int>> rankDistribution(const CostMatrix& m);

/// Performance-profile value per algorithm and τ: the fraction of
/// instances whose ratio (best cost / own cost) is ≥ τ. A 0/0 ratio
/// counts as 1 (both optimal), x/0 with x > 0 as 0.
std::vector<std::vector<double>> performanceProfile(
    const CostMatrix& m, const std::vector<double>& taus);

/// Cost ratios own/baseline per instance for one algorithm. Instances
/// where the baseline has cost 0 but the algorithm does not are skipped
/// (the ratio is undefined); 0/0 counts as 1.
std::vector<double> ratiosVsBaseline(const CostMatrix& m,
                                     std::size_t baseline, std::size_t algo);

double medianOf(std::vector<double> values);
double meanOf(const std::vector<double>& values);

struct BoxStats {
  double min = 0, q1 = 0, median = 0, q3 = 0, max = 0;
  double whiskerLo = 0, whiskerHi = 0; ///< 1.5 IQR fences clipped to data
  std::vector<double> outliers;
};

/// Tukey box plot statistics (linear-interpolation quartiles).
BoxStats boxStats(std::vector<double> values);

} // namespace cawo
