#pragma once

#include <iosfwd>
#include <string>
#include <vector>

/// \file table.hpp
/// ASCII rendering for the bench binaries: aligned tables for the paper's
/// tables and numeric series, and horizontal bar charts for the figures.

namespace cawo {

class TextTable {
public:
  explicit TextTable(std::vector<std::string> headers);

  void addRow(std::vector<std::string> cells);

  void print(std::ostream& out) const;

private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Print `label: value` lines with a proportional bar, e.g.
///   pressWR-LS  0.58  ##########
void printBarChart(std::ostream& out, const std::string& title,
                   const std::vector<std::string>& labels,
                   const std::vector<double>& values, int barWidth = 40,
                   int precision = 3);

/// A section header used by all bench binaries.
void printHeading(std::ostream& out, const std::string& text);

} // namespace cawo
