#include "sim/stats.hpp"

#include <algorithm>
#include <cmath>

#include "util/require.hpp"

namespace cawo {

CostMatrix toCostMatrix(const std::vector<InstanceResult>& results) {
  CostMatrix m;
  CAWO_REQUIRE(!results.empty(), "no results");
  for (const AlgoRun& run : results.front().runs)
    m.algorithms.push_back(run.algorithm);
  for (const InstanceResult& r : results) {
    CAWO_REQUIRE(r.runs.size() == m.algorithms.size(),
                 "inconsistent algorithm sets across instances");
    std::vector<Cost> row;
    row.reserve(r.runs.size());
    for (const AlgoRun& run : r.runs) row.push_back(run.cost);
    m.costs.push_back(std::move(row));
  }
  return m;
}

std::vector<std::vector<int>> rankDistribution(const CostMatrix& m) {
  const std::size_t A = m.numAlgorithms();
  std::vector<std::vector<int>> counts(A, std::vector<int>(A, 0));
  for (const auto& row : m.costs) {
    for (std::size_t a = 0; a < A; ++a) {
      int rank = 1;
      for (std::size_t b = 0; b < A; ++b)
        if (row[b] < row[a]) ++rank;
      ++counts[a][static_cast<std::size_t>(rank - 1)];
    }
  }
  return counts;
}

std::vector<std::vector<double>> performanceProfile(
    const CostMatrix& m, const std::vector<double>& taus) {
  const std::size_t A = m.numAlgorithms();
  std::vector<std::vector<double>> profile(A,
                                           std::vector<double>(taus.size()));
  const std::size_t I = m.numInstances();
  CAWO_REQUIRE(I > 0, "empty cost matrix");

  // ratio[i][a] = best/own.
  std::vector<std::vector<double>> ratio(I, std::vector<double>(A));
  for (std::size_t i = 0; i < I; ++i) {
    const Cost best = *std::min_element(m.costs[i].begin(), m.costs[i].end());
    for (std::size_t a = 0; a < A; ++a) {
      const Cost own = m.costs[i][a];
      ratio[i][a] = (own == 0) ? 1.0
                               : static_cast<double>(best) /
                                     static_cast<double>(own);
    }
  }
  for (std::size_t a = 0; a < A; ++a) {
    for (std::size_t t = 0; t < taus.size(); ++t) {
      int count = 0;
      for (std::size_t i = 0; i < I; ++i)
        if (ratio[i][a] >= taus[t]) ++count;
      profile[a][t] = static_cast<double>(count) / static_cast<double>(I);
    }
  }
  return profile;
}

std::vector<double> ratiosVsBaseline(const CostMatrix& m,
                                     std::size_t baseline, std::size_t algo) {
  CAWO_REQUIRE(baseline < m.numAlgorithms() && algo < m.numAlgorithms(),
               "algorithm index out of range");
  std::vector<double> out;
  out.reserve(m.numInstances());
  for (const auto& row : m.costs) {
    const Cost base = row[baseline];
    const Cost own = row[algo];
    if (base == 0) {
      if (own == 0) out.push_back(1.0);
      // else: undefined ratio, skipped (cannot improve on zero)
    } else {
      out.push_back(static_cast<double>(own) / static_cast<double>(base));
    }
  }
  return out;
}

double medianOf(std::vector<double> values) {
  CAWO_REQUIRE(!values.empty(), "median of empty set");
  std::sort(values.begin(), values.end());
  const std::size_t n = values.size();
  if (n % 2 == 1) return values[n / 2];
  return 0.5 * (values[n / 2 - 1] + values[n / 2]);
}

double meanOf(const std::vector<double>& values) {
  CAWO_REQUIRE(!values.empty(), "mean of empty set");
  double sum = 0.0;
  for (const double v : values) sum += v;
  return sum / static_cast<double>(values.size());
}

namespace {

/// Linear-interpolation quantile on sorted data (type-7, as in NumPy/R).
double quantileSorted(const std::vector<double>& sorted, double q) {
  const std::size_t n = sorted.size();
  if (n == 1) return sorted[0];
  const double pos = q * static_cast<double>(n - 1);
  const auto lo = static_cast<std::size_t>(std::floor(pos));
  const auto hi = std::min(lo + 1, n - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

} // namespace

BoxStats boxStats(std::vector<double> values) {
  CAWO_REQUIRE(!values.empty(), "box stats of empty set");
  std::sort(values.begin(), values.end());
  BoxStats s;
  s.min = values.front();
  s.max = values.back();
  s.q1 = quantileSorted(values, 0.25);
  s.median = quantileSorted(values, 0.5);
  s.q3 = quantileSorted(values, 0.75);
  const double iqr = s.q3 - s.q1;
  const double lowFence = s.q1 - 1.5 * iqr;
  const double highFence = s.q3 + 1.5 * iqr;
  s.whiskerLo = s.max;
  s.whiskerHi = s.min;
  for (const double v : values) {
    if (v < lowFence || v > highFence) {
      s.outliers.push_back(v);
    } else {
      s.whiskerLo = std::min(s.whiskerLo, v);
      s.whiskerHi = std::max(s.whiskerHi, v);
    }
  }
  return s;
}

} // namespace cawo
