#include "sim/instance.hpp"

#include <bit>
#include <cmath>
#include <cstdio>

#include "core/asap.hpp"
#include "core/instance_hash.hpp"
#include "heft/heft.hpp"
#include "util/require.hpp"
#include "util/strings.hpp"

namespace cawo {

namespace {

/// The one place that derives a ProfileRequest from instance data — shared
/// by `buildInstance` and `instanceProfileRequest` so online profile
/// resolution is bit-identical to the build-time one.
ProfileRequest detailProfileRequest(const InstanceSpec& spec,
                                    const EnhancedGraph& gc, Time deadline) {
  Power sumWork = 0;
  for (ProcId p = 0; p < gc.numProcs(); ++p) sumWork += gc.workPower(p);
  ProfileRequest preq;
  preq.horizon = deadline;
  preq.sumIdle = gc.totalIdlePower();
  preq.sumWork = sumWork;
  preq.numIntervals = spec.numIntervals;
  preq.seed = spec.seed ^ 0x5CE11A21ULL;
  return preq;
}

} // namespace

std::string InstanceSpec::label() const {
  return std::string(familyName(family)) + "-" + std::to_string(targetTasks) +
         "/c" + std::to_string(nodesPerType) + "/" + scenario + "/d" +
         formatFixed(deadlineFactor, 1);
}

std::string InstanceSpec::cellKey() const {
  // Shortest %g spelling that round-trips the factor exactly: the key must
  // distinguish 1.2 from 1.25, which label()'s 1-decimal rendering cannot.
  char factor[64];
  for (int precision = 6; precision <= 17; ++precision) {
    std::snprintf(factor, sizeof(factor), "%.*g", precision, deadlineFactor);
    if (std::strtod(factor, nullptr) == deadlineFactor) break;
  }
  return std::string(familyName(family)) + "-" + std::to_string(targetTasks) +
         "/c" + std::to_string(nodesPerType) + "/s" + std::to_string(seed) +
         "/i" + std::to_string(numIntervals) + "/d" + factor + "/" + scenario;
}

std::uint64_t instanceSpecHash(const InstanceSpec& spec) {
  Fnv1aHasher h;
  h.mixString(std::string(familyName(spec.family)));
  h.mixI64(spec.targetTasks);
  h.mixI64(spec.nodesPerType);
  h.mixString(spec.scenario);
  h.mixU64(std::bit_cast<std::uint64_t>(spec.deadlineFactor));
  h.mixI64(spec.numIntervals);
  h.mixU64(spec.seed);
  return h.value();
}

std::size_t shardOfInstance(const InstanceSpec& spec,
                            std::size_t shardCount) {
  CAWO_REQUIRE(shardCount >= 1, "shard count must be at least 1");
  return static_cast<std::size_t>(instanceSpecHash(spec) % shardCount);
}

Instance buildInstance(const InstanceSpec& spec) {
  CAWO_REQUIRE(spec.deadlineFactor >= 1.0,
               "deadline factor below 1.0 is infeasible by definition of D");

  WorkflowGenOptions gopts;
  gopts.targetTasks = spec.targetTasks;
  gopts.seed = spec.seed;
  TaskGraph graph = generateWorkflow(spec.family, gopts);

  Platform platform = Platform::scaled(spec.nodesPerType);
  HeftResult heft = runHeft(graph, platform);

  LinkPowerOptions linkPower;
  linkPower.seed = spec.seed ^ 0x11CC77EEULL;
  EnhancedGraph gc = EnhancedGraph::build(graph, platform, heft.mapping,
                                          linkPower, &heft.startTimes);

  const Time d = asapMakespan(gc);
  const Time deadline = static_cast<Time>(
      std::llround(std::ceil(spec.deadlineFactor * static_cast<double>(d))));

  // Resolve the scenario spec through the profile-source registry; the
  // request carries the legacy derived seed and default perturbation, so
  // "S1" … "S4" reproduce the pre-registry profiles bit for bit.
  const ProfileRequest preq = detailProfileRequest(spec, gc, deadline);
  PowerProfile profile = generateProfile(spec.scenario, preq);

  return Instance{spec,
                  std::move(graph),
                  std::move(platform),
                  std::move(heft.mapping),
                  std::move(gc),
                  std::move(profile),
                  d,
                  deadline};
}

ProfileRequest instanceProfileRequest(const Instance& instance) {
  return detailProfileRequest(instance.spec, instance.gc, instance.deadline);
}

} // namespace cawo
