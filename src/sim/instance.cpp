#include "sim/instance.hpp"

#include <cmath>

#include "core/asap.hpp"
#include "heft/heft.hpp"
#include "util/require.hpp"
#include "util/strings.hpp"

namespace cawo {

namespace {

/// The one place that derives a ProfileRequest from instance data — shared
/// by `buildInstance` and `instanceProfileRequest` so online profile
/// resolution is bit-identical to the build-time one.
ProfileRequest detailProfileRequest(const InstanceSpec& spec,
                                    const EnhancedGraph& gc, Time deadline) {
  Power sumWork = 0;
  for (ProcId p = 0; p < gc.numProcs(); ++p) sumWork += gc.workPower(p);
  ProfileRequest preq;
  preq.horizon = deadline;
  preq.sumIdle = gc.totalIdlePower();
  preq.sumWork = sumWork;
  preq.numIntervals = spec.numIntervals;
  preq.seed = spec.seed ^ 0x5CE11A21ULL;
  return preq;
}

} // namespace

std::string InstanceSpec::label() const {
  return std::string(familyName(family)) + "-" + std::to_string(targetTasks) +
         "/c" + std::to_string(nodesPerType) + "/" + scenario + "/d" +
         formatFixed(deadlineFactor, 1);
}

Instance buildInstance(const InstanceSpec& spec) {
  CAWO_REQUIRE(spec.deadlineFactor >= 1.0,
               "deadline factor below 1.0 is infeasible by definition of D");

  WorkflowGenOptions gopts;
  gopts.targetTasks = spec.targetTasks;
  gopts.seed = spec.seed;
  TaskGraph graph = generateWorkflow(spec.family, gopts);

  Platform platform = Platform::scaled(spec.nodesPerType);
  HeftResult heft = runHeft(graph, platform);

  LinkPowerOptions linkPower;
  linkPower.seed = spec.seed ^ 0x11CC77EEULL;
  EnhancedGraph gc = EnhancedGraph::build(graph, platform, heft.mapping,
                                          linkPower, &heft.startTimes);

  const Time d = asapMakespan(gc);
  const Time deadline = static_cast<Time>(
      std::llround(std::ceil(spec.deadlineFactor * static_cast<double>(d))));

  // Resolve the scenario spec through the profile-source registry; the
  // request carries the legacy derived seed and default perturbation, so
  // "S1" … "S4" reproduce the pre-registry profiles bit for bit.
  const ProfileRequest preq = detailProfileRequest(spec, gc, deadline);
  PowerProfile profile = generateProfile(spec.scenario, preq);

  return Instance{spec,
                  std::move(graph),
                  std::move(platform),
                  std::move(heft.mapping),
                  std::move(gc),
                  std::move(profile),
                  d,
                  deadline};
}

ProfileRequest instanceProfileRequest(const Instance& instance) {
  return detailProfileRequest(instance.spec, instance.gc, instance.deadline);
}

} // namespace cawo
