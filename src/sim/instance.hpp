#pragma once

#include <cstdint>
#include <string>

#include "core/enhanced_graph.hpp"
#include "core/mapping.hpp"
#include "core/platform.hpp"
#include "core/power_profile.hpp"
#include "core/task_graph.hpp"
#include "profile/profile_source.hpp"
#include "workflow/generators.hpp"

/// \file instance.hpp
/// An experiment instance bundles everything the paper's simulations vary:
/// a workflow (family × size), a cluster (nodes per processor type), a
/// HEFT mapping, the communication-enhanced graph, a power-profile scenario
/// and a deadline factor relative to the ASAP makespan D.

namespace cawo {

struct InstanceSpec {
  WorkflowFamily family = WorkflowFamily::Atacseq;
  int targetTasks = 200;
  int nodesPerType = 2;   ///< paper: 12 (small) / 24 (large)
  /// Power-profile spec resolved through the ProfileSourceRegistry: a
  /// paper scenario name ("S1" … "S4") or any registered spec such as
  /// "sine:period=24,amp=0.5" or "trace:grid.csv,repeat=1,normalize=1".
  std::string scenario = "S1";
  double deadlineFactor = 1.5; ///< paper: 1.0, 1.5, 2.0, 3.0
  int numIntervals = 24;
  std::uint64_t seed = 1;

  /// Human-readable identifier, e.g. "atacseq-200/c2/S1/d1.5".
  std::string label() const;

  /// Unique identifier over *all* axes, e.g.
  /// "atacseq-200/c2/s1/i24/d1.5/S1". Unlike `label()` it includes the
  /// seed and interval count and spells the deadline factor exactly (via
  /// shortest-round-trip formatting), so distinct cells never collide —
  /// the result store keys recovered segment lines by it. The free-form
  /// scenario spec comes last so its own '/'-es cannot shadow other axes.
  std::string cellKey() const;
};

/// Deterministic FNV-1a hash over the spec's axes alone — no instance
/// build required, unlike core/instance_hash. This is what campaign
/// sharding partitions on: every process computes the same owner for a
/// cell from the spec text, before any workflow is generated.
std::uint64_t instanceSpecHash(const InstanceSpec& spec);

/// The shard (0-based, < shardCount) that owns this instance.
std::size_t shardOfInstance(const InstanceSpec& spec, std::size_t shardCount);

struct Instance {
  InstanceSpec spec;
  TaskGraph graph;
  Platform platform;
  Mapping mapping;
  EnhancedGraph gc;
  PowerProfile profile;
  Time asapMakespanD = 0; ///< the paper's D (tightest deadline)
  Time deadline = 0;      ///< ceil(deadlineFactor * D)
};

/// Build the full instance: generate the workflow, run HEFT, build the
/// enhanced graph (HEFT start times as communication priority), compute
/// the ASAP makespan D, set the deadline, and generate the power profile
/// over exactly [0, deadline).
Instance buildInstance(const InstanceSpec& spec);

/// The exact ProfileRequest `buildInstance` used for this instance
/// (horizon, power band, interval count, derived legacy seed). The online
/// layers resolve *additional* profiles — an `actual` spec, or the
/// forecast/actual pair of the instance's own spec — through this request
/// so they are bit-identical to what a fresh build would generate.
ProfileRequest instanceProfileRequest(const Instance& instance);

} // namespace cawo
