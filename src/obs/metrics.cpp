#include "obs/metrics.hpp"

#include <algorithm>
#include <ostream>

namespace cawo::obs {

Histogram::Histogram(std::vector<double> bucketBounds)
    : bounds_(std::move(bucketBounds)),
      buckets_(bounds_.empty() ? 0 : bounds_.size() + 1, 0) {}

const std::vector<double>& Histogram::defaultLatencyBucketsMs() {
  static const std::vector<double> buckets = {
      0.1, 0.2, 0.5, 1.0,  2.0,  5.0,   10.0,  20.0,   50.0,
      100, 200, 500, 1000, 2000, 5000.0, 10000.0};
  return buckets;
}

void Histogram::record(double value) {
  std::lock_guard<std::mutex> lock(mutex_);
  samples_.push_back(value);
  sorted_ = false;
  sum_ += value;
  if (!buckets_.empty()) {
    const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), value);
    buckets_[static_cast<std::size_t>(it - bounds_.begin())] += 1;
  }
}

void Histogram::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  samples_.clear();
  sorted_ = true;
  sum_ = 0.0;
  std::fill(buckets_.begin(), buckets_.end(), 0);
}

std::int64_t Histogram::count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return static_cast<std::int64_t>(samples_.size());
}

double Histogram::sum() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return sum_;
}

double Histogram::mean() const {
  std::lock_guard<std::mutex> lock(mutex_);
  if (samples_.empty()) return 0.0;
  return sum_ / static_cast<double>(samples_.size());
}

double Histogram::min() const {
  std::lock_guard<std::mutex> lock(mutex_);
  if (samples_.empty()) return 0.0;
  return *std::min_element(samples_.begin(), samples_.end());
}

double Histogram::max() const {
  std::lock_guard<std::mutex> lock(mutex_);
  if (samples_.empty()) return 0.0;
  return *std::max_element(samples_.begin(), samples_.end());
}

double Histogram::percentile(double q) const {
  std::lock_guard<std::mutex> lock(mutex_);
  if (samples_.empty()) return 0.0;
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
  q = std::clamp(q, 0.0, 1.0);
  // Historical serve formula, byte-stable for the same samples: index
  // floor(q * n) clamped to the last sample.
  const auto rank =
      static_cast<std::size_t>(q * static_cast<double>(samples_.size()));
  return samples_[std::min(rank, samples_.size() - 1)];
}

std::vector<std::int64_t> Histogram::bucketCounts() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return buckets_;
}

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry registry;
  return registry;
}

Counter& MetricsRegistry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricsRegistry::histogram(const std::string& name) {
  return histogram(name, Histogram::defaultLatencyBucketsMs());
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      std::vector<double> bounds) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>(std::move(bounds));
  return *slot;
}

void MetricsRegistry::forEachCounter(
    const std::function<void(const std::string&, std::int64_t)>& fn) const {
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& [name, c] : counters_) fn(name, c->value());
}

void MetricsRegistry::forEachGauge(
    const std::function<void(const std::string&, std::int64_t)>& fn) const {
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& [name, g] : gauges_) fn(name, g->value());
}

void MetricsRegistry::forEachHistogram(
    const std::function<void(const std::string&, const Histogram&)>& fn)
    const {
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& [name, h] : histograms_) fn(name, *h);
}

void MetricsRegistry::writeText(std::ostream& out) const {
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& [name, c] : counters_) {
    out << name << " " << c->value() << "\n";
  }
  for (const auto& [name, g] : gauges_) {
    out << name << " " << g->value() << "\n";
  }
  for (const auto& [name, h] : histograms_) {
    out << name << " count=" << h->count() << " mean=" << h->mean()
        << " p99=" << h->percentile(0.99) << "\n";
  }
}

void MetricsRegistry::reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [name, c] : counters_) c->reset();
  for (auto& [name, g] : gauges_) g->reset();
  for (auto& [name, h] : histograms_) h->clear();
}

std::size_t MetricsRegistry::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return counters_.size() + gauges_.size() + histograms_.size();
}

void harvestSolveStats(const std::map<std::string, std::int64_t>& stats) {
  auto& registry = MetricsRegistry::global();
  registry.counter("solve.count").add(1);
  for (const auto& [key, value] : stats) {
    registry.counter("solve.stats." + key).add(value);
  }
}

} // namespace cawo::obs
