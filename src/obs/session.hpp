#pragma once

#include <iosfwd>
#include <string>

/// \file session.hpp
/// CLI-facing lifetime wrapper around the trace recorder.
///
/// Every subcommand that supports tracing (`solve`, `campaign`,
/// `replay`, `serve`, plus the loadgen bench) constructs one
/// `TraceSession` from its `--trace=FILE` / `--trace-summary` flags.
/// When either is requested (or the `CAWO_TRACE` environment variable
/// names a file and no flag overrides it), the session flips the
/// recorder to Recording for its lifetime; `finish()` writes the Chrome
/// trace file and/or prints the hierarchical summary to stderr. The
/// destructor finishes best-effort so early-return paths still produce
/// the trace.

namespace cawo::obs {

class TraceSession {
public:
  /// `traceFile` empty means "no --trace flag"; the `CAWO_TRACE` env
  /// variable then supplies the file name, if set. `summary` requests
  /// the plain-text rollup on finish.
  TraceSession(std::string traceFile, bool summary);
  ~TraceSession();

  TraceSession(const TraceSession&) = delete;
  TraceSession& operator=(const TraceSession&) = delete;

  /// True when tracing was requested (recorder is in Recording state).
  bool active() const { return active_; }

  /// Write the trace file (if any) and print the summary (if requested)
  /// to `err`; turns recording off. Idempotent.
  void finish(std::ostream& err);
  void finish(); ///< finish(std::cerr)

private:
  std::string traceFile_;
  bool summary_ = false;
  bool active_ = false;
  bool finished_ = false;
};

} // namespace cawo::obs
