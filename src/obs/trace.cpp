#include "obs/trace.hpp"

#include <algorithm>
#include <cstdio>
#include <map>
#include <ostream>
#include <utility>

#include "exp/json.hpp"
#include "obs/metrics.hpp"

namespace cawo::obs {

namespace detail {
std::atomic<int> g_traceState{0};
} // namespace detail

TraceRecorder::TraceRecorder() : epoch_(std::chrono::steady_clock::now()) {}

TraceRecorder& TraceRecorder::global() {
  static TraceRecorder recorder;
  return recorder;
}

void TraceRecorder::setState(TraceState s) {
  detail::g_traceState.store(static_cast<int>(s), std::memory_order_relaxed);
}

TraceState TraceRecorder::state() const {
  return static_cast<TraceState>(detail::traceStateRelaxed());
}

void TraceRecorder::setProcess(int pid, std::string name) {
  std::lock_guard<std::mutex> lock(registryMutex_);
  pid_ = pid;
  processName_ = std::move(name);
}

int TraceRecorder::pid() const {
  std::lock_guard<std::mutex> lock(registryMutex_);
  return pid_;
}

std::int64_t TraceRecorder::nowNs() const {
  return toEpochNs(std::chrono::steady_clock::now());
}

std::int64_t
TraceRecorder::toEpochNs(std::chrono::steady_clock::time_point tp) const {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(tp - epoch_)
      .count();
}

TraceThreadBuffer& TraceRecorder::localBuffer() {
  // Per-thread cache: registration happens once per thread, under the
  // registry mutex; afterwards appends touch only this buffer. The
  // shared_ptr keeps the buffer alive in the recorder after thread exit.
  thread_local std::shared_ptr<TraceThreadBuffer> tl;
  if (!tl) {
    tl = std::make_shared<TraceThreadBuffer>();
    std::lock_guard<std::mutex> lock(registryMutex_);
    tl->tid = static_cast<int>(buffers_.size()) + 1;
    buffers_.push_back(tl);
  }
  return *tl;
}

std::vector<std::shared_ptr<TraceThreadBuffer>>
TraceRecorder::snapshotBuffers() const {
  std::lock_guard<std::mutex> lock(registryMutex_);
  return buffers_;
}

void TraceRecorder::clear() {
  for (const auto& buf : snapshotBuffers()) {
    std::lock_guard<std::mutex> lock(buf->mutex);
    buf->events.clear();
  }
}

std::size_t TraceRecorder::eventCount() const {
  std::size_t n = 0;
  for (const auto& buf : snapshotBuffers()) {
    std::lock_guard<std::mutex> lock(buf->mutex);
    n += buf->events.size();
  }
  return n;
}

void TraceRecorder::recordSpan(const char* name, std::int64_t tsNs,
                               std::int64_t durNs,
                               std::vector<TraceArg> args) {
  if (state() != TraceState::Recording) return;
  auto& buf = localBuffer();
  std::lock_guard<std::mutex> lock(buf.mutex);
  buf.events.push_back(TraceEvent{name, TraceEvent::Kind::Span, tsNs, durNs,
                                  0.0, std::move(args)});
}

void TraceRecorder::recordInstant(const char* name,
                                  std::vector<TraceArg> args) {
  if (state() != TraceState::Recording) return;
  auto& buf = localBuffer();
  std::lock_guard<std::mutex> lock(buf.mutex);
  buf.events.push_back(TraceEvent{name, TraceEvent::Kind::Instant, nowNs(), 0,
                                  0.0, std::move(args)});
}

void TraceRecorder::recordCounter(const char* name, double value) {
  if (state() != TraceState::Recording) return;
  auto& buf = localBuffer();
  std::lock_guard<std::mutex> lock(buf.mutex);
  buf.events.push_back(
      TraceEvent{name, TraceEvent::Kind::Counter, nowNs(), 0, value, {}});
}

void TraceRecorder::recordAsyncSpan(const char* name, std::uint64_t id,
                                    std::int64_t tsNs, std::int64_t durNs,
                                    std::vector<TraceArg> args) {
  if (state() != TraceState::Recording) return;
  auto& buf = localBuffer();
  std::lock_guard<std::mutex> lock(buf.mutex);
  buf.events.push_back(TraceEvent{name, TraceEvent::Kind::AsyncSpan, tsNs,
                                  durNs, 0.0, std::move(args), id});
}

void TraceRecorder::setThreadName(std::string name) {
  auto& buf = localBuffer();
  std::lock_guard<std::mutex> lock(buf.mutex);
  buf.threadName = std::move(name);
}

namespace {

void writeArgs(JsonWriter& w, const std::vector<TraceArg>& args) {
  w.key("args");
  w.beginObject();
  for (const auto& a : args) {
    w.key(a.key);
    if (a.quoted) {
      w.value(a.text);
    } else {
      w.rawValue(a.text);
    }
  }
  w.endObject();
}

/// Events of one thread, snapshotted for serialization.
struct LaneSnapshot {
  int tid;
  std::string name;
  std::vector<TraceEvent> events;
};

} // namespace

void TraceRecorder::writeChromeTrace(std::ostream& out) const {
  std::vector<LaneSnapshot> lanes;
  int pid;
  std::string processName;
  {
    std::lock_guard<std::mutex> lock(registryMutex_);
    pid = pid_;
    processName = processName_;
    for (const auto& buf : buffers_) {
      std::lock_guard<std::mutex> bufLock(buf->mutex);
      lanes.push_back(LaneSnapshot{buf->tid, buf->threadName, buf->events});
    }
  }

  JsonWriter w(out, 1);
  w.beginObject();
  w.key("displayTimeUnit");
  w.value("ms");
  w.key("traceEvents");
  w.beginArray();

  w.compactNext();
  w.beginObject();
  w.key("ph"); w.value("M");
  w.key("name"); w.value("process_name");
  w.key("pid"); w.value(pid);
  w.key("tid"); w.value(0);
  w.key("args");
  w.beginObject();
  w.key("name"); w.value(processName);
  w.endObject();
  w.endObject();

  for (const auto& lane : lanes) {
    if (lane.name.empty()) continue;
    w.compactNext();
    w.beginObject();
    w.key("ph"); w.value("M");
    w.key("name"); w.value("thread_name");
    w.key("pid"); w.value(pid);
    w.key("tid"); w.value(lane.tid);
    w.key("args");
    w.beginObject();
    w.key("name"); w.value(lane.name);
    w.endObject();
    w.endObject();
  }

  for (const auto& lane : lanes) {
    for (const auto& ev : lane.events) {
      if (ev.kind == TraceEvent::Kind::AsyncSpan) {
        // Paired nestable-async begin/end; (cat, id) names the track, so
        // spans of one request stack together regardless of which thread
        // recorded them.
        char idBuf[24];
        std::snprintf(idBuf, sizeof(idBuf), "0x%llx",
                      static_cast<unsigned long long>(ev.asyncId));
        w.compactNext();
        w.beginObject();
        w.key("ph"); w.value("b");
        w.key("cat"); w.value("request");
        w.key("name"); w.value(ev.name);
        w.key("id"); w.value(idBuf);
        w.key("pid"); w.value(pid);
        w.key("tid"); w.value(lane.tid);
        w.key("ts"); w.rawValue(jsonNumber(static_cast<double>(ev.tsNs) / 1000.0));
        if (!ev.args.empty()) writeArgs(w, ev.args);
        w.endObject();
        w.compactNext();
        w.beginObject();
        w.key("ph"); w.value("e");
        w.key("cat"); w.value("request");
        w.key("name"); w.value(ev.name);
        w.key("id"); w.value(idBuf);
        w.key("pid"); w.value(pid);
        w.key("tid"); w.value(lane.tid);
        w.key("ts");
        w.rawValue(jsonNumber(static_cast<double>(ev.tsNs + ev.durNs) / 1000.0));
        w.endObject();
        continue;
      }
      w.compactNext();
      w.beginObject();
      switch (ev.kind) {
      case TraceEvent::Kind::Span:
        w.key("ph"); w.value("X");
        w.key("name"); w.value(ev.name);
        w.key("pid"); w.value(pid);
        w.key("tid"); w.value(lane.tid);
        w.key("ts"); w.rawValue(jsonNumber(static_cast<double>(ev.tsNs) / 1000.0));
        w.key("dur"); w.rawValue(jsonNumber(static_cast<double>(ev.durNs) / 1000.0));
        if (!ev.args.empty()) writeArgs(w, ev.args);
        break;
      case TraceEvent::Kind::Instant:
        w.key("ph"); w.value("i");
        w.key("name"); w.value(ev.name);
        w.key("pid"); w.value(pid);
        w.key("tid"); w.value(lane.tid);
        w.key("ts"); w.rawValue(jsonNumber(static_cast<double>(ev.tsNs) / 1000.0));
        w.key("s"); w.value("t");
        if (!ev.args.empty()) writeArgs(w, ev.args);
        break;
      case TraceEvent::Kind::Counter:
        w.key("ph"); w.value("C");
        w.key("name"); w.value(ev.name);
        w.key("pid"); w.value(pid);
        w.key("tid"); w.value(lane.tid);
        w.key("ts"); w.rawValue(jsonNumber(static_cast<double>(ev.tsNs) / 1000.0));
        w.key("args");
        w.beginObject();
        w.key("value"); w.value(ev.counterValue);
        w.endObject();
        break;
      case TraceEvent::Kind::AsyncSpan:
        break; // handled above
      }
      w.endObject();
    }
  }

  w.endArray();
  w.endObject();
  out << "\n";
}

void TraceRecorder::writeSummary(std::ostream& out) const {
  // Rebuild the span hierarchy per thread lane: sort by (ts asc, dur
  // desc) and stack by containment, so a child's path is
  // "<parent path>/<name>". Aggregation is over full paths.
  struct PathStats {
    Histogram durationsUs{std::vector<double>{}};
    double totalUs = 0;
  };
  std::map<std::string, PathStats> byPath;
  std::size_t spanCount = 0;
  std::size_t laneCount = 0;

  for (const auto& buf : snapshotBuffers()) {
    std::vector<TraceEvent> spans;
    {
      std::lock_guard<std::mutex> lock(buf->mutex);
      for (const auto& ev : buf->events) {
        if (ev.kind == TraceEvent::Kind::Span) {
          spans.push_back(ev);
        } else if (ev.kind == TraceEvent::Kind::AsyncSpan) {
          // Cross-thread spans have no lane parent — aggregate them as
          // roots under their own name.
          auto& stats = byPath[ev.name];
          const double durUs = static_cast<double>(ev.durNs) / 1000.0;
          stats.durationsUs.record(durUs);
          stats.totalUs += durUs;
          ++spanCount;
        }
      }
    }
    if (spans.empty()) continue;
    ++laneCount;
    std::stable_sort(spans.begin(), spans.end(),
                     [](const TraceEvent& a, const TraceEvent& b) {
                       if (a.tsNs != b.tsNs) return a.tsNs < b.tsNs;
                       return a.durNs > b.durNs;
                     });
    struct Open {
      std::int64_t endNs;
      std::string path;
    };
    std::vector<Open> stack;
    for (const auto& ev : spans) {
      while (!stack.empty() && ev.tsNs >= stack.back().endNs) stack.pop_back();
      std::string path = stack.empty()
                             ? std::string(ev.name)
                             : stack.back().path + "/" + ev.name;
      auto& stats = byPath[path];
      const double durUs = static_cast<double>(ev.durNs) / 1000.0;
      stats.durationsUs.record(durUs);
      stats.totalUs += durUs;
      ++spanCount;
      stack.push_back(Open{ev.tsNs + ev.durNs, std::move(path)});
    }
  }

  out << "trace summary: " << spanCount << " spans across " << laneCount
      << " thread lanes\n";
  if (byPath.empty()) return;

  char line[160];
  std::snprintf(line, sizeof(line), "%-44s %9s %12s %12s %12s\n", "span",
                "count", "total ms", "mean ms", "p99 ms");
  out << line;
  for (const auto& [path, stats] : byPath) {
    // Full paths keep rows greppable ("solve.variant/greedy"); the map's
    // lexicographic order already lists children right after their parent.
    std::snprintf(line, sizeof(line), "%-44s %9lld %12.3f %12.3f %12.3f\n",
                  path.c_str(),
                  static_cast<long long>(stats.durationsUs.count()),
                  stats.totalUs / 1000.0,
                  stats.durationsUs.mean() / 1000.0,
                  stats.durationsUs.percentile(0.99) / 1000.0);
    out << line;
  }
}

#ifndef CAWO_OBS_DISABLED

void TraceScope::begin(const char* name) {
  name_ = name;
  auto& recorder = TraceRecorder::global();
  recording_ = recorder.state() == TraceState::Recording;
  startNs_ = recorder.nowNs();
}

void TraceScope::end() {
  auto& recorder = TraceRecorder::global();
  const std::int64_t endNs = recorder.nowNs();
  if (recording_) {
    recorder.recordSpan(name_, startNs_, endNs - startNs_, std::move(args_));
  }
}

void TraceScope::arg(const char* key, const std::string& value) {
  if (!recording_) return;
  args_.push_back(TraceArg{key, value, true});
}

void TraceScope::arg(const char* key, std::int64_t value) {
  if (!recording_) return;
  args_.push_back(TraceArg{key, std::to_string(value), false});
}

void TraceScope::arg(const char* key, double value) {
  if (!recording_) return;
  args_.push_back(TraceArg{key, jsonNumber(value), false});
}

void traceInstant(const char* name) {
  if (!traceRecording()) return;
  TraceRecorder::global().recordInstant(name);
}

void traceCounter(const char* name, double value) {
  if (!traceRecording()) return;
  TraceRecorder::global().recordCounter(name, value);
}

void traceSpanBetween(const char* name,
                      std::chrono::steady_clock::time_point begin,
                      std::chrono::steady_clock::time_point end,
                      std::vector<TraceArg> args) {
  if (!traceRecording()) return;
  auto& recorder = TraceRecorder::global();
  const std::int64_t tsNs = recorder.toEpochNs(begin);
  recorder.recordSpan(name, tsNs, recorder.toEpochNs(end) - tsNs,
                      std::move(args));
}

void traceAsyncSpanBetween(const char* name, std::uint64_t id,
                           std::chrono::steady_clock::time_point begin,
                           std::chrono::steady_clock::time_point end,
                           std::vector<TraceArg> args) {
  if (!traceRecording()) return;
  auto& recorder = TraceRecorder::global();
  const std::int64_t tsNs = recorder.toEpochNs(begin);
  recorder.recordAsyncSpan(name, id, tsNs, recorder.toEpochNs(end) - tsNs,
                           std::move(args));
}

void traceSetThreadName(const std::string& name) {
  TraceRecorder::global().setThreadName(name);
}

#endif // CAWO_OBS_DISABLED

} // namespace cawo::obs
