#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

/// \file trace.hpp
/// Zero-cost-when-disabled trace spans (see DESIGN.md, "Telemetry layer"
/// and docs/observability.md).
///
/// The recorder keeps one append-only event buffer per thread, stamped
/// with a monotonic clock, and serializes to Chrome trace-event JSON
/// (`traceEvents` array of `ph:"X"` complete events with pid/tid/ts/dur/
/// args) that loads directly in Perfetto or chrome://tracing, plus a
/// plain-text hierarchical summary (count/total/mean/p99 per span path).
///
/// Cost model — the hard constraint is that telemetry must never change a
/// schedule and must cost nothing when off:
///  - `CAWO_OBS_DISABLED` (compile definition) compiles every span site
///    out entirely; the recorder still links so `--trace` writes an empty
///    (but valid) trace instead of breaking scripts.
///  - At runtime a single relaxed atomic holds the state: `Off` (span
///    constructors are one predicted branch), `Idle` (timestamps are
///    taken but nothing is stored — isolates clock cost in benchmarks),
///    and `Recording` (events append to the calling thread's buffer).
///  - Buffers are registered once per thread under a mutex and held by
///    shared_ptr, so they survive thread exit; appends lock only the
///    owning thread's (uncontended) buffer mutex, and only while
///    recording.
///
/// Instrumentation never synchronizes between worker threads, so it
/// cannot perturb any of the repo's determinism guarantees — the
/// bit-identical-schedule tests in tests/test_trace_schedules.cpp pin
/// that across all variants and thread counts.

namespace cawo {
class JsonWriter;
}

namespace cawo::obs {

/// Runtime tracing state (one relaxed atomic, see file comment).
enum class TraceState : int {
  Off = 0,       ///< span sites cost one predicted branch
  Idle = 1,      ///< timestamps taken, nothing stored (bench mode)
  Recording = 2, ///< events append to per-thread buffers
};

namespace detail {
extern std::atomic<int> g_traceState;
inline int traceStateRelaxed() {
  return g_traceState.load(std::memory_order_relaxed);
}
} // namespace detail

/// One span/instant/counter argument, pre-rendered for the JSON writer.
struct TraceArg {
  std::string key;
  std::string text; ///< payload: string body or formatted number
  bool quoted;      ///< true → JSON string, false → raw number literal
};

/// One recorded event. `name` must point at storage that outlives the
/// recorder (string literals at every call site).
struct TraceEvent {
  enum class Kind : std::uint8_t { Span, Instant, Counter, AsyncSpan };
  const char* name;
  Kind kind;
  std::int64_t tsNs;  ///< ns since the recorder epoch
  std::int64_t durNs; ///< spans only
  double counterValue;
  std::vector<TraceArg> args;
  std::uint64_t asyncId = 0; ///< AsyncSpan only: nestable-async track id
};

/// Per-thread append-only buffer; owned jointly by the registering thread
/// (thread_local shared_ptr) and the recorder, so events survive thread
/// exit. The mutex is only ever contended by a reader (write/clear).
struct TraceThreadBuffer {
  std::mutex mutex;
  std::vector<TraceEvent> events;
  int tid = 0;
  std::string threadName;
};

/// Process-wide trace recorder. All spans record into `global()`; the
/// class is only instantiable there (tests reset it via clear()).
class TraceRecorder {
public:
  static TraceRecorder& global();

  void setState(TraceState s);
  TraceState state() const;

  /// Label the process lane in the trace (store shards use pid = shard
  /// index so a merged view shows shard lanes side by side).
  void setProcess(int pid, std::string name);
  int pid() const;

  /// Drop every recorded event (thread registrations and tids persist).
  void clear();
  std::size_t eventCount() const;

  /// ns since the recorder epoch, on the monotonic clock.
  std::int64_t nowNs() const;
  std::int64_t toEpochNs(std::chrono::steady_clock::time_point tp) const;

  /// Record on the calling thread's buffer; no-ops unless Recording.
  void recordSpan(const char* name, std::int64_t tsNs, std::int64_t durNs,
                  std::vector<TraceArg> args = {});
  void recordInstant(const char* name, std::vector<TraceArg> args = {});
  void recordCounter(const char* name, double value);
  /// Cross-thread span, serialized as a paired nestable-async begin/end
  /// (`ph:"b"`/`"e"`) under track `id` — the Chrome-format answer to
  /// spans that overlap on a thread lane (serve's per-request spans,
  /// which cover queue time while the worker handles other requests).
  void recordAsyncSpan(const char* name, std::uint64_t id, std::int64_t tsNs,
                       std::int64_t durNs, std::vector<TraceArg> args = {});

  /// Name the calling thread's lane (emitted as ph:"M" metadata). Cheap
  /// and allowed in any state — pools name their workers at startup.
  void setThreadName(std::string name);

  /// Serialize everything recorded so far as Chrome trace-event JSON.
  void writeChromeTrace(std::ostream& out) const;

  /// Plain-text hierarchical rollup: count/total/mean/p99 per span path
  /// (children indented under the span that contains them).
  void writeSummary(std::ostream& out) const;

private:
  TraceRecorder();
  TraceThreadBuffer& localBuffer();
  std::vector<std::shared_ptr<TraceThreadBuffer>> snapshotBuffers() const;

  mutable std::mutex registryMutex_;
  std::vector<std::shared_ptr<TraceThreadBuffer>> buffers_;
  std::chrono::steady_clock::time_point epoch_;
  int pid_ = 1;
  std::string processName_ = "cawosched";
};

#ifndef CAWO_OBS_DISABLED

/// True when any tracing is on (Idle or Recording).
inline bool traceEnabled() { return detail::traceStateRelaxed() != 0; }
/// True only while events are actually stored — guard arg formatting.
inline bool traceRecording() { return detail::traceStateRelaxed() == 2; }

/// RAII complete-event span. The constructor is the per-site cost: one
/// relaxed load and a predicted branch when tracing is Off.
class TraceScope {
public:
  explicit TraceScope(const char* name) {
    if (detail::traceStateRelaxed() != 0) begin(name);
  }
  ~TraceScope() {
    if (name_ != nullptr) end();
  }
  TraceScope(const TraceScope&) = delete;
  TraceScope& operator=(const TraceScope&) = delete;

  bool recording() const { return recording_; }

  /// Attach an argument (stored only while this span is recording, so
  /// callers can skip building values behind `recording()`).
  void arg(const char* key, const std::string& value);
  void arg(const char* key, std::int64_t value);
  void arg(const char* key, double value);

private:
  void begin(const char* name);
  void end();

  const char* name_ = nullptr;
  std::int64_t startNs_ = 0;
  bool recording_ = false;
  std::vector<TraceArg> args_;
};

/// Free-function event helpers (no-ops unless Recording).
void traceInstant(const char* name);
void traceCounter(const char* name, double value);
/// Span with explicit endpoints, for phases whose boundaries were
/// captured as time points before the decision to record (serve records
/// queue-wait this way from its admission/pickup stamps).
void traceSpanBetween(const char* name,
                      std::chrono::steady_clock::time_point begin,
                      std::chrono::steady_clock::time_point end,
                      std::vector<TraceArg> args = {});
/// Cross-thread span on nestable-async track `id`: spans sharing an id
/// render as one stacked per-request track in Perfetto instead of
/// colliding with unrelated spans on the recording thread's lane.
void traceAsyncSpanBetween(const char* name, std::uint64_t id,
                           std::chrono::steady_clock::time_point begin,
                           std::chrono::steady_clock::time_point end,
                           std::vector<TraceArg> args = {});
/// Name the calling thread's trace lane; safe in any state.
void traceSetThreadName(const std::string& name);

#else // CAWO_OBS_DISABLED — every span site compiles to nothing.

inline bool traceEnabled() { return false; }
inline bool traceRecording() { return false; }

class TraceScope {
public:
  explicit TraceScope(const char*) {}
  bool recording() const { return false; }
  void arg(const char*, const std::string&) {}
  void arg(const char*, std::int64_t) {}
  void arg(const char*, double) {}
};

inline void traceInstant(const char*) {}
inline void traceCounter(const char*, double) {}
inline void traceSpanBetween(const char*,
                             std::chrono::steady_clock::time_point,
                             std::chrono::steady_clock::time_point,
                             std::vector<TraceArg> = {}) {}
inline void traceAsyncSpanBetween(const char*, std::uint64_t,
                                  std::chrono::steady_clock::time_point,
                                  std::chrono::steady_clock::time_point,
                                  std::vector<TraceArg> = {}) {}
inline void traceSetThreadName(const std::string&) {}

#endif // CAWO_OBS_DISABLED

} // namespace cawo::obs
