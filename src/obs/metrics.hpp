#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

/// \file metrics.hpp
/// Named counters, gauges and histograms (see DESIGN.md, "Telemetry
/// layer" and docs/observability.md, "Metrics catalog").
///
/// This replaces the repo's three one-off stat surfaces with one
/// registry: `SolveResult::stats` keys are harvested into counters
/// uniformly (`harvestSolveStats`), the serve daemon's hand-rolled
/// nearest-rank percentile code lives here as `Histogram` (byte-stable
/// with the old serve output for the same samples), and campaign/store
/// throughput counters surface through the same types.
///
/// Counters and gauges are single relaxed atomics — safe to bump from
/// any thread, including solver hot paths. `Histogram` keeps the exact
/// sample set (mutex-protected) so nearest-rank percentiles are exact,
/// plus fixed bucket counts for the serve `detail:"full"` export.

namespace cawo::obs {

/// Monotonic counter (relaxed atomic).
class Counter {
public:
  void add(std::int64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  std::int64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() { value_.store(0, std::memory_order_relaxed); }

private:
  std::atomic<std::int64_t> value_{0};
};

/// Last-write-wins gauge (relaxed atomic).
class Gauge {
public:
  void set(std::int64_t v) { value_.store(v, std::memory_order_relaxed); }
  std::int64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() { value_.store(0, std::memory_order_relaxed); }

private:
  std::atomic<std::int64_t> value_{0};
};

/// Sample histogram with exact nearest-rank percentiles plus fixed
/// bucket counts.
///
/// The percentile is the serve daemon's historical definition, kept
/// byte-stable: sort ascending, take index `floor(q * n)` clamped to
/// `n - 1`. Edge behavior is pinned by direct unit tests: an empty
/// histogram reports 0.0 for every statistic, a single sample is
/// returned for every q, and q outside [0, 1] is clamped instead of
/// indexing out of range.
class Histogram {
public:
  /// `bucketBounds` are upper bounds (ascending); samples land in the
  /// first bucket whose bound is >= the value, with one implicit
  /// overflow bucket at the end. An empty bounds list keeps samples
  /// only (used by the trace summary).
  explicit Histogram(std::vector<double> bucketBounds);
  Histogram() : Histogram(defaultLatencyBucketsMs()) {}

  void record(double value);
  void clear();

  std::int64_t count() const;
  double sum() const;
  double mean() const; ///< 0.0 when empty
  double min() const;  ///< 0.0 when empty
  double max() const;  ///< 0.0 when empty
  /// Nearest-rank percentile over the exact samples (see class comment).
  double percentile(double q) const;

  const std::vector<double>& bucketBounds() const { return bounds_; }
  /// Per-bucket counts, size `bucketBounds().size() + 1` (overflow last);
  /// empty when constructed with no bounds.
  std::vector<std::int64_t> bucketCounts() const;

  /// Default latency buckets (ms), a 1-2-5 ladder from 0.1ms to 10s.
  static const std::vector<double>& defaultLatencyBucketsMs();

private:
  mutable std::mutex mutex_;
  mutable std::vector<double> samples_;
  mutable bool sorted_ = true;
  std::vector<double> bounds_;
  std::vector<std::int64_t> buckets_;
  double sum_ = 0.0;
};

/// Process-wide named-metric registry. Lookup registers on first use and
/// returns a stable reference; the instruments themselves are
/// thread-safe, and lookup takes the registry mutex.
class MetricsRegistry {
public:
  static MetricsRegistry& global();
  MetricsRegistry() = default;

  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name);
  Histogram& histogram(const std::string& name, std::vector<double> bounds);

  /// Iterate instruments in name order.
  void forEachCounter(
      const std::function<void(const std::string&, std::int64_t)>& fn) const;
  void forEachGauge(
      const std::function<void(const std::string&, std::int64_t)>& fn) const;
  void forEachHistogram(
      const std::function<void(const std::string&, const Histogram&)>& fn)
      const;

  /// "name value" lines for counters/gauges and
  /// "name count=N mean=X p99=Y" for histograms, name-sorted.
  void writeText(std::ostream& out) const;

  /// Zero counters/gauges and clear histograms (registrations persist).
  void reset();

  std::size_t size() const;

private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

/// Fold one solver run's `SolveResult::stats` into the global registry:
/// each key becomes the counter `solve.stats.<key>` (summed across
/// runs), plus one bump of `solve.count`. The campaign runner and the
/// serve daemon both harvest through this, so every stat surfaces the
/// same way regardless of the entry point.
void harvestSolveStats(const std::map<std::string, std::int64_t>& stats);

} // namespace cawo::obs
