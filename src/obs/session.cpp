#include "obs/session.hpp"

#include <cstdlib>
#include <fstream>
#include <iostream>
#include <utility>

#include "obs/trace.hpp"
#include "util/require.hpp"

namespace cawo::obs {

TraceSession::TraceSession(std::string traceFile, bool summary)
    : traceFile_(std::move(traceFile)), summary_(summary) {
  if (traceFile_.empty()) {
    if (const char* env = std::getenv("CAWO_TRACE")) traceFile_ = env;
  }
  active_ = !traceFile_.empty() || summary_;
  if (active_) {
#ifdef CAWO_OBS_DISABLED
    std::cerr << "warning: tracing requested but compiled out "
                 "(CAWO_OBS_DISABLED); the trace will be empty\n";
#endif
    TraceRecorder::global().setState(TraceState::Recording);
  }
}

TraceSession::~TraceSession() {
  if (active_ && !finished_) finish();
}

void TraceSession::finish() { finish(std::cerr); }

void TraceSession::finish(std::ostream& err) {
  if (!active_ || finished_) return;
  finished_ = true;
  auto& recorder = TraceRecorder::global();
  recorder.setState(TraceState::Off);
  if (!traceFile_.empty()) {
    std::ofstream out(traceFile_);
    CAWO_REQUIRE(out.good(), "cannot open trace file " + traceFile_);
    recorder.writeChromeTrace(out);
    err << "trace: wrote " << recorder.eventCount() << " events to "
        << traceFile_ << "\n";
  }
  if (summary_) recorder.writeSummary(err);
}

} // namespace cawo::obs
