#!/usr/bin/env python3
"""Validate a Chrome trace-event JSON file produced by --trace=FILE.

Checks, per (pid, tid) lane, that the complete ("ph": "X") spans form a
proper containment forest: sorted by (ts asc, dur desc), every span that
starts inside another span must also end inside it. Also checks the
envelope fields every event must carry. Used by CI on the traced
campaign / serve smokes; run locally as

    python3 tools/check_trace.py build/TRACE_campaign.json \
        --require campaign.cell --require greedy

Exits non-zero (with a diagnostic) on the first malformed lane.
"""

import argparse
import collections
import json
import sys

# A child may overrun its parent by this much (µs): the recorder takes
# the child's end timestamp before the parent's, so exact ties are legal
# but clock granularity can leave sub-microsecond inversions.
SLACK_US = 1e-3


def fail(msg):
    print("check_trace: FAIL:", msg, file=sys.stderr)
    sys.exit(1)


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("trace", help="Chrome trace-event JSON file")
    parser.add_argument(
        "--require",
        action="append",
        default=[],
        metavar="NAME",
        help="span name that must appear at least once (repeatable)",
    )
    args = parser.parse_args()

    with open(args.trace, "r", encoding="utf-8") as f:
        doc = json.load(f)

    if "traceEvents" not in doc:
        fail("no traceEvents array — not a Chrome trace")
    events = doc["traceEvents"]

    lanes = collections.defaultdict(list)
    names = collections.Counter()
    for i, ev in enumerate(events):
        ph = ev.get("ph")
        if ph is None:
            fail("event %d has no ph field" % i)
        if ph == "M":
            continue
        for field in ("name", "pid", "tid", "ts"):
            if field not in ev:
                fail("event %d (ph=%s) lacks %r" % (i, ph, field))
        if ph in ("b", "e"):
            # Nestable-async track events (per-request spans): paired by
            # (cat, id), not lane-nested — count begins, skip containment.
            if "id" not in ev or "cat" not in ev:
                fail("async event %d (%r) lacks id/cat" % (i, ev.get("name")))
            if ph == "b":
                names[ev["name"]] += 1
            continue
        if ph != "X":
            continue
        if "dur" not in ev or ev["dur"] < 0:
            fail("span %r (event %d) has missing/negative dur" % (ev["name"], i))
        names[ev["name"]] += 1
        lanes[(ev["pid"], ev["tid"])].append(ev)

    for name in args.require:
        if not names[name]:
            fail("required span %r never recorded" % name)

    for (pid, tid), spans in sorted(lanes.items()):
        spans.sort(key=lambda ev: (ev["ts"], -ev["dur"]))
        stack = []  # open ancestors, innermost last
        for ev in spans:
            end = ev["ts"] + ev["dur"]
            while stack and ev["ts"] >= stack[-1]["ts"] + stack[-1]["dur"] - SLACK_US:
                stack.pop()
            if stack:
                parent = stack[-1]
                parent_end = parent["ts"] + parent["dur"]
                if end > parent_end + SLACK_US:
                    fail(
                        "lane pid=%s tid=%s: span %r [%s, %s] overflows its "
                        "parent %r [%s, %s]"
                        % (pid, tid, ev["name"], ev["ts"], end, parent["name"],
                           parent["ts"], parent_end)
                    )
            stack.append(ev)

    total = sum(names.values())
    print(
        "check_trace: OK: %d spans (%d distinct names) across %d lanes"
        % (total, len(names), len(lanes))
    )
    for name, count in names.most_common(10):
        print("  %6d  %s" % (count, name))


if __name__ == "__main__":
    main()
