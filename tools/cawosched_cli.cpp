// cawosched-cli — schedule a DOT workflow under a CSV green-power profile.
//
//   cawosched-cli --workflow=flow.dot [--profile=green.csv]
//                 [--variant=pressWR-LS] [--deadline-factor=2.0]
//                 [--nodes-per-type=2] [--scenario=S1] [--intervals=24]
//                 [--green-heft] [--alpha=0.5]
//                 [--out=schedule.csv] [--gantt] [--seed=1]
//
// The workflow is HEFT-mapped (or GreenHEFT-mapped with --green-heft) onto
// a Table 1 cluster, the enhanced graph is built, and the chosen CaWoSched
// variant runs against the profile. Without --profile a synthetic scenario
// (--scenario) is generated over exactly the deadline horizon. Prints the
// ASAP and carbon-aware costs; optionally writes the schedule CSV and an
// ASCII Gantt chart.

#include <iostream>

#include "core/asap.hpp"
#include "core/carbon_cost.hpp"
#include "core/cawosched.hpp"
#include "core/schedule_io.hpp"
#include "heft/green_heft.hpp"
#include "heft/heft.hpp"
#include "profile/profile_io.hpp"
#include "profile/scenario.hpp"
#include "util/cli.hpp"
#include "util/require.hpp"
#include "util/strings.hpp"
#include "workflow/dot_io.hpp"

int main(int argc, char** argv) {
  using namespace cawo;
  try {
    const CliArgs args(argc, argv,
                       {"workflow", "profile", "variant", "deadline-factor",
                        "nodes-per-type", "scenario", "intervals",
                        "green-heft", "alpha", "out", "gantt", "seed",
                        "help"});
    if (args.has("help") || !args.has("workflow")) {
      std::cout << "usage: cawosched-cli --workflow=flow.dot "
                   "[--profile=green.csv] [--variant=pressWR-LS]\n"
                   "  [--deadline-factor=2.0] [--nodes-per-type=2] "
                   "[--scenario=S1|S2|S3|S4]\n"
                   "  [--intervals=24] [--green-heft] [--alpha=0.5] "
                   "[--out=schedule.csv] [--gantt]\n";
      return args.has("help") ? 0 : 2;
    }

    const TaskGraph workflow =
        readDotFile(args.getString("workflow", ""));
    const Platform cluster = Platform::scaled(
        static_cast<int>(args.getInt("nodes-per-type", 2)));
    const double factor = args.getDouble("deadline-factor", 2.0);
    const auto seed = static_cast<std::uint64_t>(args.getInt("seed", 1));

    // Pass 1 — mapping and ordering.
    const HeftResult mapped = [&]() {
      if (!args.has("green-heft")) return runHeft(workflow, cluster);
      // GreenHEFT needs a profile up front; bootstrap with a plain-HEFT
      // horizon estimate when the profile is synthetic.
      const HeftResult plain = runHeft(workflow, cluster);
      PowerProfile mapProfile;
      if (args.has("profile")) {
        mapProfile = readProfileCsvFile(args.getString("profile", ""));
      } else {
        mapProfile = generateScenario(
            Scenario::S1, std::max<Time>(1, 2 * plain.makespan),
            cluster.totalIdlePower(), cluster.totalWorkPower(),
            {static_cast<int>(args.getInt("intervals", 24)), 0.1, seed});
      }
      GreenHeftOptions gh;
      gh.alpha = args.getDouble("alpha", 0.5);
      return runGreenHeft(workflow, cluster, mapProfile, gh);
    }();

    LinkPowerOptions linkPower;
    linkPower.seed = seed;
    const EnhancedGraph gc = EnhancedGraph::build(
        workflow, cluster, mapped.mapping, linkPower, &mapped.startTimes);
    const Time d = asapMakespan(gc);
    const auto deadline =
        static_cast<Time>(factor * static_cast<double>(d)) + 1;

    // Power profile covering the deadline.
    PowerProfile profile;
    if (args.has("profile")) {
      profile = readProfileCsvFile(args.getString("profile", ""));
      CAWO_REQUIRE(profile.horizon() >= deadline,
                   "profile horizon " + std::to_string(profile.horizon()) +
                       " does not cover the deadline " +
                       std::to_string(deadline) +
                       " — extend the CSV or lower --deadline-factor");
    } else {
      Power sumWork = 0;
      for (ProcId p = 0; p < gc.numProcs(); ++p) sumWork += gc.workPower(p);
      const std::string name = args.getString("scenario", "S1");
      Scenario scenario = Scenario::S1;
      if (name == "S2") scenario = Scenario::S2;
      else if (name == "S3") scenario = Scenario::S3;
      else if (name == "S4") scenario = Scenario::S4;
      else CAWO_REQUIRE(name == "S1", "unknown scenario: " + name);
      profile = generateScenario(
          scenario, deadline, gc.totalIdlePower(), sumWork,
          {static_cast<int>(args.getInt("intervals", 24)), 0.1, seed});
    }

    const VariantSpec variant =
        VariantSpec::parse(args.getString("variant", "pressWR-LS"));

    const Schedule asap = scheduleAsap(gc);
    const Cost asapCost = evaluateCost(gc, profile, asap);
    const Schedule tuned = runVariant(gc, profile, deadline, variant);
    const Cost tunedCost = evaluateCost(gc, profile, tuned);

    std::cout << "workflow      : " << workflow.numTasks() << " tasks, "
              << gc.numNodes() - workflow.numTasks()
              << " communication tasks\n"
              << "cluster       : " << cluster.numProcessors()
              << " compute nodes, " << gc.numLinks() << " active links\n"
              << "ASAP makespan : " << d << "  deadline: " << deadline
              << "\n"
              << "carbon ASAP   : " << asapCost << "\n"
              << "carbon " << padRight(variant.name(), 7) << ": "
              << tunedCost;
    if (asapCost > 0)
      std::cout << "  (ratio "
                << formatFixed(static_cast<double>(tunedCost) /
                                   static_cast<double>(asapCost),
                               3)
                << ")";
    std::cout << "\n";

    const std::string out = args.getString("out", "");
    if (!out.empty()) {
      writeScheduleCsvFile(out, gc, tuned, &workflow);
      std::cout << "schedule written to " << out << "\n";
    }
    if (args.has("gantt")) printGantt(std::cout, gc, tuned, deadline);
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
