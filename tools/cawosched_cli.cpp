// cawosched-cli — schedule a DOT workflow under a CSV green-power profile
// with any solver from the registry, or run a declarative experiment
// campaign. Full reference: docs/cli.md.
//
//   cawosched-cli --list-algos
//   cawosched-cli --list-scenarios
//   cawosched-cli --workflow=flow.dot [--profile=green.csv]
//                 [--algo=<name|glob|comma list|all>] [--threads=N]
//                 [--deadline-factor=2.0] [--nodes-per-type=2]
//                 [--scenario=SPEC] [--intervals=24] [--alpha=0.5]
//                 [--block-size=3] [--ls-radius=10] [--ls-restarts=N]
//                 [--bnb-max-nodes=N] [--bnb-time-limit=SEC]
//                 [--out=schedule.csv] [--gantt] [--seed=1]
//   cawosched-cli campaign [--campaign=<file>] [--out=results.json]
//                 [--summary] [--threads=N] [--quiet]
//                 [--store=DIR] [--shard=i/N] [--resume]
//                 [--group-commit=64] [--max-cells=N]
//                 [--<axis>=<comma list> ...]   (overrides the file)
//   cawosched-cli query --store=DIR [--solvers=GLOB,...]
//                 [--scenarios=SPEC,...] [--families=a,b]
//                 [--min-tasks=N] [--max-tasks=N]
//                 [--deadline-factors=a,b] [--seeds=a,b]
//                 [--instance-hash=HEX] [--feasible-only]
//                 [--records[=FILE]] [--summary] [--count] [--quiet]
//   cawosched-cli replay [--list-policies]
//                 [--family=atacseq] [--tasks=60] [--nodes-per-type=2]
//                 [--intervals=24] [--deadline-factor=2.0] [--seed=1]
//                 [--forecast=SPEC] [--actual=SPEC] [--policy=SPEC,...]
//                 [--algo=NAME] [--runtime-noise=A] [--runtime-seed=N]
//                 [--out=replay.json]
//   cawosched-cli serve [--port=N] [--workers=N] [--threads=N]
//                 [--queue-capacity=64] [--cache-capacity=16]
//                 [--default-timeout-ms=0] [--max-request-bytes=B]
//                 [--block-size=3] [--ls-radius=10] [--quiet]
//
// The workflow is HEFT-mapped onto a Table 1 cluster, the enhanced graph
// is built, and every selected solver runs against the profile. Without
// --profile a power profile is generated over exactly the deadline
// horizon from any registered profile-source spec (--scenario accepts
// "S1" … "S4", "sine:period=24,amp=0.5", "trace:grid.csv,repeat=1", … —
// see --list-scenarios and docs/formats.md). Per-solver diagnostics (carbon cost, wall time,
// optimality flag, ratio vs ASAP) come from the uniform SolveResult;
// optionally the best schedule is written as CSV or an ASCII Gantt chart.
//
// The campaign subcommand expands a cross-product of workflow families,
// sizes, cluster sizes, scenarios, deadline factors and seeds (see
// docs/formats.md for the campaign file format), runs every selected
// solver on every instance in parallel, prints an aggregate summary and
// optionally writes one JSON record per (instance, solver) cell. With
// --store the records stream into a sharded, resumable on-disk result
// store instead of RAM (see docs/formats.md, "Campaign result store");
// the query subcommand filters and summarises such a store.
//
// Legacy spellings are still accepted: --variant=<name> equals
// --algo=<name>, and --green-heft equals --algo=greenheft.

#include <algorithm>
#include <chrono>
#include <fstream>
#include <iostream>
#include <mutex>
#include <sstream>

#include "core/asap.hpp"
#include "core/carbon_cost.hpp"
#include "core/schedule_io.hpp"
#include "exp/campaign.hpp"
#include "exp/campaign_runner.hpp"
#include "exp/json.hpp"
#include "exp/store.hpp"
#include "exp/summary.hpp"
#include "heft/heft.hpp"
#include "obs/session.hpp"
#include "obs/trace.hpp"
#include "online/policy.hpp"
#include "online/replay.hpp"
#include "online/result_json.hpp"
#include "profile/profile_io.hpp"
#include "profile/profile_source.hpp"
#include "serve/listings.hpp"
#include "serve/server.hpp"
#include "serve/transport.hpp"
#include "sim/table.hpp"
#include "solver/registry.hpp"
#include "util/cli.hpp"
#include "util/parallel.hpp"
#include "util/progress.hpp"
#include "util/require.hpp"
#include "util/strings.hpp"
#include "workflow/dot_io.hpp"

namespace {

using namespace cawo;

/// Parse `--shard=i/N` (0-based index, total count) into store options.
void parseShardFlag(const std::string& value, StoreOptions& options) {
  const std::vector<std::string> parts = split(value, '/');
  CAWO_REQUIRE(parts.size() == 2,
               "--shard wants i/N (0-based), e.g. --shard=0/4 — got \"" +
                   value + "\"");
  options.shardIndex = static_cast<std::size_t>(
      parseInt64Strict("--shard index", std::string(trim(parts[0]))));
  options.shardCount = static_cast<std::size_t>(
      parseInt64Strict("--shard count", std::string(trim(parts[1]))));
  CAWO_REQUIRE(options.shardCount >= 1 &&
                   options.shardIndex < options.shardCount,
               "--shard=" + value + ": index must be 0-based and below "
               "the shard count");
}

/// The store-backed campaign path: stream records into one shard of the
/// result store, then summarise (and optionally export) the merged store
/// if every shard is complete.
int runCampaignToStoreCommand(const CliArgs& args, const CampaignSpec& spec,
                              const SolverOptions& options, bool quiet) {
  StoreOptions storeOptions;
  if (args.has("shard"))
    parseShardFlag(args.getString("shard", ""), storeOptions);
  storeOptions.resume = args.has("resume");
  storeOptions.groupCommit =
      static_cast<std::size_t>(args.getInt("group-commit", 64));
  const std::string dir = args.getString("store", "");
  CAWO_REQUIRE(!dir.empty(), "--store wants a directory path");

  CampaignStoreWriter store(dir, spec, storeOptions);
  // Multi-process sweeps: label this shard's trace lane so merged traces
  // show the shards side by side (pid 1 is the unsharded default).
  if (store.shardCount() > 1)
    obs::TraceRecorder::global().setProcess(
        static_cast<int>(store.shardIndex()) + 1,
        "cawosched shard " + std::to_string(store.shardIndex()) + "/" +
            std::to_string(store.shardCount()));
  if (!quiet) {
    std::cerr << "store: " << dir << " — shard " << store.shardIndex()
              << "/" << store.shardCount() << " owns " << store.shardCells()
              << " cells, " << store.presentCells() << " already present\n";
    const StoreRecovery& rec = store.recovery();
    if (rec.recoveredCells || rec.truncatedBytes || rec.droppedIndexLines)
      std::cerr << "store: recovery re-indexed " << rec.recoveredCells
                << " cells, dropped " << rec.droppedIndexLines
                << " index lines and " << rec.truncatedBytes
                << " torn segment bytes\n";
  }

  ProgressMeter meter(!quiet);
  const CampaignRunStats stats = runCampaignToStore(
      options, store, std::ref(meter),
      static_cast<std::size_t>(args.getInt("max-cells", 0)));
  if (!quiet) {
    std::cerr << "shard " << store.shardIndex() << "/" << store.shardCount()
              << ": solved " << stats.cellsSolved << " cells ("
              << stats.instancesSolved << " instances), "
              << stats.presentBefore << " were already durable";
    if (stats.cappedByMaxCells) std::cerr << " [capped by --max-cells]";
    std::cerr << "\n";
    if (stats.wallSec > 0.0)
      std::cerr << "throughput: " << formatFixed(stats.cellsPerSec, 1)
                << " cells/s, " << formatFixed(stats.recordsPerSec, 1)
                << " records/s durable, " << stats.fsyncs << " fsyncs in "
                << formatFixed(stats.wallSec, 2) << " s\n";
  }
  store.flush();

  CampaignStoreReader reader(dir);
  if (!reader.complete()) {
    if (!quiet)
      std::cout << "store incomplete: " << reader.presentCells() << "/"
                << reader.totalCells() << " cells present — run the "
                << "remaining shards (or --resume interrupted ones); "
                << "--out/--summary apply once complete\n";
    return 0;
  }

  const CampaignOutcome outcome = summariseStore(reader);
  if (!quiet || !args.has("out"))
    printCampaignSummary(std::cout, outcome, args.has("summary"));
  if (args.has("out")) {
    const std::string out = args.getString("out", "results.json");
    writeCampaignJsonFileFromStore(out, reader);
    if (!quiet)
      std::cout << "\n" << reader.totalCells() << " JSON records written "
                << "to " << out << "\n";
  }
  return 0;
}

/// `cawosched-cli campaign ...` — run a declarative experiment campaign.
/// `argv` starts at the flags after the subcommand word.
int runCampaignCommand(int argc, const char* const* argv) {
  const CliArgs args(argc, argv,
                     {"campaign", "out", "summary", "quiet", "help", "name",
                      "families", "tasks", "bacass-tasks", "nodes-per-type",
                      "scenarios", "deadline-factors", "seeds", "intervals",
                      "algos", "threads", "block-size", "ls-radius", "online",
                      "actual", "policies", "runtime-noise", "store", "shard",
                      "resume", "group-commit", "max-cells", "trace",
                      "trace-summary"},
                     "cawosched-cli campaign");
  if (args.has("help")) {
    std::cout
        << "usage: cawosched-cli campaign [--campaign=<file>] "
           "[--out=results.json] [--summary]\n"
           "  [--threads=N] [--quiet] [--name=label] "
           "[--families=atacseq,eager,...]\n"
           "  [--tasks=a,b] [--bacass-tasks=N] [--nodes-per-type=a,b] "
           "[--scenarios=SPEC,...|all]\n"
           "  [--deadline-factors=1.5,2.0] [--seeds=a,b] [--intervals=J] "
           "[--algos=SEL]\n"
           "  [--block-size=3] [--ls-radius=10] [--online=1] "
           "[--actual=SPEC]\n"
           "  [--policies=SPEC,...] [--runtime-noise=A]\n"
           "  [--store=DIR] [--shard=i/N] [--resume] [--group-commit=64] "
           "[--max-cells=N]\n"
           "With --online=1 every (instance, solver, policy) cell runs "
           "through the online\nreplay engine (see `cawosched-cli replay "
           "--help`).\n"
           "The campaign file holds the same keys as the flags "
           "(key = value lines or a JSON\nobject, see docs/formats.md); "
           "flags override the file. The scenarios axis takes\nany "
           "registered profile spec (--list-scenarios), e.g. "
           "S1,sine:period=24,amp=0.5,duck.\n"
           "With --store records stream into a sharded, resumable on-disk "
           "result store\ninstead of RAM: --shard=i/N partitions the grid "
           "across N independent processes,\n--resume completes an "
           "interrupted run (only missing cells are solved), and\n"
           "`cawosched-cli query` filters the result (see docs/cli.md).\n"
           "--trace=FILE writes a Perfetto-loadable Chrome trace of the "
           "run;\n--trace-summary prints a per-span rollup to stderr "
           "(docs/observability.md).\n";
    return 0;
  }

  obs::TraceSession trace(args.getString("trace", ""),
                          args.has("trace-summary"));

  CampaignSpec spec;
  if (args.has("campaign"))
    spec = parseCampaignFile(args.getString("campaign", ""));
  // Axis flags override the file: every flag funnels through the same
  // setCampaignKey vocabulary as the file keys.
  for (const char* key :
       {"name", "families", "tasks", "bacass-tasks", "nodes-per-type",
        "scenarios", "deadline-factors", "seeds", "intervals", "algos",
        "threads", "online", "actual", "policies", "runtime-noise"}) {
    if (args.has(key)) setCampaignKey(spec, key, args.getString(key, ""));
  }

  SolverOptions options;
  options.setInt("block-size", args.getInt("block-size", 3));
  options.setInt("ls-radius", args.getInt("ls-radius", 10));

  const bool quiet = args.has("quiet");
  const std::vector<std::string> solvers = campaignSolverNames(spec);
  if (!quiet) {
    std::cout << "campaign \"" << spec.name << "\": " << spec.cellCount()
              << " instances × " << solvers.size() << " solvers";
    if (spec.online)
      std::cout << " × " << spec.policies.size() << " policies (online)";
    std::cout << " ("
              << spec.cellCount() * solvers.size() * spec.policyCount()
              << " cells)\n";
  }

  for (const char* storeOnly : {"shard", "resume", "group-commit",
                                "max-cells"})
    CAWO_REQUIRE(args.has("store") || !args.has(storeOnly),
                 std::string("--") + storeOnly +
                     " needs --store=DIR (the in-memory path has no "
                     "shards or resume)");
  if (args.has("store"))
    return runCampaignToStoreCommand(args, spec, options, quiet);

  ProgressMeter meter(!quiet);
  const CampaignOutcome outcome = runCampaign(spec, options, std::ref(meter));

  if (!quiet || !args.has("out"))
    printCampaignSummary(std::cout, outcome, args.has("summary"));
  if (args.has("out")) {
    const std::string out = args.getString("out", "results.json");
    writeCampaignJsonFile(out, outcome);
    if (!quiet)
      std::cout << "\n" << outcome.records.size() << " JSON records written "
                << "to " << out << "\n";
  }
  return 0;
}

/// `cawosched-cli query ...` — filter and summarise a campaign result
/// store without loading it into memory. `argv` starts after the
/// subcommand word.
int runQueryCommand(int argc, const char* const* argv) {
  const CliArgs args(argc, argv,
                     {"help", "store", "solvers", "scenarios", "families",
                      "min-tasks", "max-tasks", "deadline-factors", "seeds",
                      "instance-hash", "feasible-only", "records", "summary",
                      "count", "quiet"},
                     "cawosched-cli query");
  if (args.has("help") || !args.has("store")) {
    std::cout
        << "usage: cawosched-cli query --store=DIR [--solvers=GLOB,...]\n"
           "  [--scenarios=SPEC,...] [--families=a,b] [--min-tasks=N] "
           "[--max-tasks=N]\n"
           "  [--deadline-factors=a,b] [--seeds=a,b] "
           "[--instance-hash=HEX]\n"
           "  [--feasible-only] [--records[=FILE]] [--summary] [--count] "
           "[--quiet]\n"
           "Streams a campaign result store (campaign --store=DIR) "
           "through the filters in\nmerged instance order. --records "
           "emits the matching record lines (JSONL) to\nstdout or FILE; "
           "--summary prints the per-solver aggregate over the matches;\n"
           "--count prints only the match count. --solvers takes the same "
           "glob syntax as\n--algos; online stores match the full "
           "\"solver @ policy\" cell label.\n";
    return args.has("help") ? 0 : 2;
  }

  CampaignStoreReader reader(args.getString("store", ""));

  StoreQuery query;
  if (args.has("solvers"))
    query.solvers = splitSpecList(args.getString("solvers", ""));
  if (args.has("scenarios"))
    query.scenarios = splitSpecList(args.getString("scenarios", ""));
  if (args.has("families"))
    for (const std::string& f : split(args.getString("families", ""), ','))
      query.families.push_back(std::string(trim(f)));
  query.minTasks = static_cast<int>(args.getInt("min-tasks", 0));
  if (args.has("max-tasks"))
    query.maxTasks = static_cast<int>(args.getInt("max-tasks", 0));
  if (args.has("deadline-factors"))
    for (const std::string& f :
         split(args.getString("deadline-factors", ""), ','))
      query.deadlineFactors.push_back(
          parseDoubleStrict("--deadline-factors", std::string(trim(f))));
  if (args.has("seeds"))
    for (const std::string& s : split(args.getString("seeds", ""), ','))
      query.seeds.push_back(
          parseUint64Strict("--seeds", std::string(trim(s))));
  query.instanceHash = args.getString("instance-hash", "");
  query.feasibleOnly = args.has("feasible-only");

  const bool quiet = args.has("quiet");
  const bool wantSummary = args.has("summary");
  const bool wantRecords = args.has("records");
  const bool wantCount = args.has("count");

  // --records destination: stdout for the bare flag, else the given file.
  // CliArgs stores bare boolean flags as "1", so that value means stdout.
  std::ofstream recordFile;
  std::ostream* recordOut = nullptr;
  std::string recordPath = args.getString("records", "");
  if (recordPath == "1") recordPath.clear();
  if (wantRecords) {
    if (recordPath.empty()) {
      recordOut = &std::cout;
    } else {
      recordFile.open(recordPath);
      CAWO_REQUIRE(recordFile.good(),
                   "cannot open record file for writing: " + recordPath);
      recordOut = &recordFile;
    }
  }

  // The summary view feeds matched cells into the shared accumulator,
  // one full-width group per instance with unmatched cells standing in
  // as skipped records — "wins" then means wins *within the query*.
  const std::vector<std::string>& labels = reader.cellLabels();
  std::vector<std::size_t> labelPos; // cell index → position, or npos
  std::vector<std::string> matchedLabels;
  for (std::size_t c = 0; c < labels.size(); ++c) {
    bool match = query.solvers.empty();
    for (const std::string& glob : query.solvers)
      if (globMatch(glob, labels[c])) { match = true; break; }
    labelPos.push_back(match ? matchedLabels.size()
                             : std::numeric_limits<std::size_t>::max());
    if (match) matchedLabels.push_back(labels[c]);
  }
  SummaryAccumulator accumulator(matchedLabels,
                                 campaignDistinctScenarios(reader.spec()));
  std::vector<CampaignRecord> group(matchedLabels.size());
  for (CampaignRecord& r : group) r.skipped = true;
  std::size_t groupInstance = std::numeric_limits<std::size_t>::max();
  std::size_t groupMatches = 0;
  const auto flushGroup = [&]() {
    if (groupMatches == 0) return;
    accumulator.addInstance(group.data(), group.size());
    for (CampaignRecord& r : group) r = CampaignRecord{};
    for (CampaignRecord& r : group) r.skipped = true;
    groupMatches = 0;
  };

  StoreQueryFn consumer;
  if (wantRecords || wantSummary) {
    consumer = [&](std::size_t instance, std::size_t cell,
                   const CampaignRecord& record, const std::string& line) {
      if (recordOut) *recordOut << line << '\n';
      if (!wantSummary) return;
      if (instance != groupInstance) {
        flushGroup();
        groupInstance = instance;
      }
      group[labelPos[cell]] = record;
      ++groupMatches;
    };
  }
  const std::size_t matched = queryStore(reader, query, consumer);
  flushGroup();
  if (recordOut) {
    recordOut->flush();
    CAWO_REQUIRE(recordOut->good(),
                 "failed writing record file: " + recordPath);
  }

  if (wantCount) {
    std::cout << matched << "\n";
    return 0;
  }
  // Status goes to stderr so `--records` piped from stdout stays pure
  // JSONL and `--summary` output stays machine-diffable.
  if (!quiet)
    std::cerr << "matched " << matched << " of " << reader.presentCells()
              << " present cells (" << reader.totalCells() << " total, "
              << reader.shardCount() << " shard"
              << (reader.shardCount() == 1 ? "" : "s") << ")\n";
  if (wantSummary) {
    if (matchedLabels.empty()) {
      std::cout << "no cell label matches --solvers — nothing to "
                   "summarise\n";
    } else {
      CampaignOutcome view;
      view.spec = reader.spec();
      view.spec.name = reader.spec().name + " [query]";
      view.solvers = matchedLabels;
      view.scenarios = accumulator.scenarios();
      view.results.resize(reader.numInstances());
      view.summaries = accumulator.finish();
      printCampaignSummary(std::cout, view, true);
    }
  }
  if (!quiet && recordOut == &recordFile && !recordPath.empty())
    std::cout << matched << " record lines written to " << recordPath
              << "\n";
  return 0;
}

// The three discovery listings print the shared serve/listings rendering,
// so the CLI output and the serve daemon's `list` responses are the same
// bytes by construction.
int listPolicies() {
  std::cout << policyListing().text;
  return 0;
}

/// `cawosched-cli replay ...` — execute one instance through the online
/// replay engine: plan against the forecast, bill against the actual,
/// compare rescheduling policies. `argv` starts after the subcommand word.
int runReplayCommand(int argc, const char* const* argv) {
  const CliArgs args(argc, argv,
                     {"help", "list-policies", "family", "tasks",
                      "nodes-per-type", "intervals", "deadline-factor",
                      "seed", "forecast", "actual", "policy", "algo",
                      "runtime-noise", "runtime-seed", "block-size",
                      "ls-radius", "alpha", "out", "trace",
                      "trace-summary"},
                     "cawosched-cli replay");
  if (args.has("help")) {
    std::cout
        << "usage: cawosched-cli replay [--list-policies]\n"
           "  [--family=atacseq] [--tasks=60] [--nodes-per-type=2] "
           "[--intervals=24]\n"
           "  [--deadline-factor=2.0] [--seed=1] [--forecast=SPEC] "
           "[--actual=SPEC]\n"
           "  [--policy=SPEC,...] [--algo=NAME] [--runtime-noise=A] "
           "[--runtime-seed=N]\n"
           "  [--block-size=3] [--ls-radius=10] [--alpha=0.5] "
           "[--out=replay.json]\n"
           "The solver plans against --forecast (any profile spec; its "
           "+noise modifier is\nread as forecast error) and execution is "
           "billed against --actual (defaults to\nthe forecast's noisy "
           "counterpart). Each --policy runs one replay; see\n"
           "--list-policies and docs/cli.md for a walkthrough.\n"
           "--trace=FILE / --trace-summary record per-event and "
           "per-re-solve spans\n(docs/observability.md).\n";
    return 0;
  }
  if (args.has("list-policies")) return listPolicies();

  obs::TraceSession trace(args.getString("trace", ""),
                          args.has("trace-summary"));

  InstanceSpec spec;
  spec.family = familyFromName(args.getString("family", "atacseq"));
  spec.targetTasks = static_cast<int>(args.getInt("tasks", 60));
  spec.nodesPerType = static_cast<int>(args.getInt("nodes-per-type", 2));
  spec.numIntervals = static_cast<int>(args.getInt("intervals", 24));
  spec.deadlineFactor = args.getDouble("deadline-factor", 2.0);
  spec.seed = static_cast<std::uint64_t>(args.getInt("seed", 1));
  spec.scenario = args.getString("forecast", "S1");
  const std::string actualSpec = args.getString("actual", "");

  const std::vector<std::string> policies =
      splitSpecList(args.getString("policy", "static"));
  CAWO_REQUIRE(!policies.empty(), "no rescheduling policy given");
  for (const std::string& policy : policies)
    (void)ReschedulePolicyRegistry::global().resolve(policy);

  OnlineOptions opts;
  opts.solver = args.getString("algo", "pressWR-LS");
  opts.runtimeNoise = args.getDouble("runtime-noise", 0.0);
  opts.runtimeSeed =
      static_cast<std::uint64_t>(args.getInt("runtime-seed", 1));
  if (args.has("alpha"))
    opts.solverOptions.setDouble("alpha", args.getDouble("alpha", 0.5));
  opts.solverOptions.setInt("block-size", args.getInt("block-size", 3));
  opts.solverOptions.setInt("ls-radius", args.getInt("ls-radius", 10));

  const Instance inst = buildInstance(spec);
  std::cout << "instance      : " << inst.spec.label() << " ("
            << inst.gc.numNodes() << " enhanced nodes)\n"
            << "ASAP makespan : " << inst.asapMakespanD
            << "  deadline: " << inst.deadline << "\n"
            << "forecast      : " << spec.scenario << "\n"
            << "actual        : "
            << (actualSpec.empty() ? spec.scenario + " (noise pair)"
                                   : actualSpec)
            << "   runtime noise: " << opts.runtimeNoise << "\n"
            << "solver        : " << opts.solver << "\n\n";

  const std::vector<OnlineResult> results =
      replayOnlinePolicies(inst, actualSpec, opts, policies);

  TextTable table({"policy", "actual cost", "plan cost", "clairvoyant",
                   "regret", "re-solves", "resolve ms", "deadline"});
  for (const OnlineResult& r : results) {
    if (!r.ran) {
      table.addRow({r.policy, "-", "-", "-", "-", "-", "-", "failed"});
      continue;
    }
    table.addRow(
        {r.policy, std::to_string(r.actualCost),
         std::to_string(r.forecastCost),
         r.clairvoyantFeasible ? std::to_string(r.clairvoyantCost) : "-",
         r.clairvoyantFeasible ? std::to_string(r.regret) : "-",
         std::to_string(r.resolveCount) + " (" +
             std::to_string(r.resolveAccepted) + " ok)",
         formatFixed(r.resolveWallMs, 2), r.deadlineMet ? "met" : "MISSED"});
  }
  table.print(std::cout);
  for (const OnlineResult& r : results)
    if (!r.ran)
      std::cout << "note: " << r.policy << " failed — " << r.error << "\n";

  if (args.has("out")) {
    const std::string out = args.getString("out", "replay.json");
    std::ofstream file(out);
    CAWO_REQUIRE(file.good(), "cannot open result file for writing: " + out);
    JsonWriter w(file);
    w.beginObject();
    w.key("schema").value("cawosched-replay-v1");
    w.key("instance").value(inst.spec.label());
    w.key("solver").value(opts.solver);
    w.key("forecast").value(spec.scenario);
    if (actualSpec.empty()) w.key("actual").null();
    else w.key("actual").value(actualSpec);
    w.key("runtime_noise").value(opts.runtimeNoise);
    w.key("deadline").value(static_cast<std::int64_t>(inst.deadline));
    w.key("records");
    w.beginArray();
    for (const OnlineResult& r : results) {
      w.compactNext();
      w.beginObject();
      w.key("policy").value(r.policy);
      w.key("ran").value(r.ran);
      if (r.ran) writeOnlineResultFields(w, r);
      w.endObject();
    }
    w.endArray();
    w.endObject();
    file << '\n';
    CAWO_REQUIRE(file.good(), "failed writing result file: " + out);
    std::cout << "\nreplay records written to " << out << "\n";
  }
  // A run where any replay failed must not read as success to scripts/CI.
  for (const OnlineResult& r : results)
    if (!r.ran) return 1;
  return 0;
}

int listAlgos() {
  std::cout << algoListing().text;
  return 0;
}

int listScenarios() {
  std::cout << scenarioListing().text;
  return 0;
}

/// `cawosched-cli serve ...` — the scheduler-as-a-service daemon: speak
/// `cawosched-serve-v1` newline-delimited JSON over stdin/stdout and,
/// with --port, a loopback TCP socket too. `argv` starts after the
/// subcommand word. See docs/cli.md for a walkthrough.
int runServeCommand(int argc, const char* const* argv) {
  const CliArgs args(argc, argv,
                     {"help", "port", "workers", "threads",
                      "queue-capacity", "cache-capacity",
                      "default-timeout-ms", "max-request-bytes",
                      "block-size", "ls-radius", "quiet", "trace",
                      "trace-summary"},
                     "cawosched-cli serve");
  if (args.has("help")) {
    std::cout
        << "usage: cawosched-cli serve [--port=N] [--workers=N] "
           "[--threads=N]\n"
           "  [--queue-capacity=64] [--cache-capacity=16] "
           "[--default-timeout-ms=0]\n"
           "  [--max-request-bytes=1048576] [--block-size=3] "
           "[--ls-radius=10] [--quiet]\n"
           "--workers sizes the request pool (0 = hardware); --threads "
           "sets the default\nintra-solve thread budget per request "
           "(0 = hardware; results never change).\n"
           "Long-running scheduler daemon: one JSON request per line on "
           "stdin, one JSON\nresponse per line on stdout "
           "(cawosched-serve-v1 — kinds: solve, replay, list,\nstats, "
           "shutdown; see docs/formats.md). With --port the same protocol "
           "is also\nserved on 127.0.0.1:N (0 = ephemeral; the bound port "
           "is announced on stderr).\nThe daemon exits on a shutdown "
           "request, or on stdin EOF when no --port is\ngiven. Repeated "
           "instances hit an LRU SolveContext cache (watch the `stats`\n"
           "request's cache_hits). Diagnostics go to stderr; stdout "
           "carries protocol\nbytes only.\n"
           "--trace=FILE writes per-request span trees (admission, queue "
           "wait, cache\nacquire, solve, respond) on exit; --trace-summary "
           "prints the rollup\n(docs/observability.md).\n";
    return 0;
  }

  obs::TraceSession trace(args.getString("trace", ""),
                          args.has("trace-summary"));

  ServeOptions options;
  options.workers = static_cast<unsigned>(args.getInt("workers", 0));
  options.queueCapacity =
      static_cast<std::size_t>(args.getInt("queue-capacity", 64));
  options.cacheCapacity =
      static_cast<std::size_t>(args.getInt("cache-capacity", 16));
  options.defaultTimeoutMs = args.getInt("default-timeout-ms", 0);
  options.maxRequestBytes =
      static_cast<std::size_t>(args.getInt("max-request-bytes", 1 << 20));
  options.solverDefaults.setInt("block-size", args.getInt("block-size", 3));
  options.solverDefaults.setInt("ls-radius", args.getInt("ls-radius", 10));
  if (args.has("threads"))
    options.solverDefaults.setInt("threads",
                                  threadsFromArgs(args, "threads", 1));

  ServeServer server(options);
  std::unique_ptr<TcpServeListener> listener;
  if (args.has("port"))
    listener = std::make_unique<TcpServeListener>(
        server, static_cast<std::uint16_t>(args.getInt("port", 0)));

  // Everything human goes to stderr — stdout is protocol bytes only.
  if (!args.has("quiet")) {
    std::cerr << "cawosched-serve: " << server.stats().workers
              << " workers, queue capacity " << options.queueCapacity
              << ", context cache " << options.cacheCapacity << "\n";
    if (listener)
      std::cerr << "cawosched-serve: listening on 127.0.0.1:"
                << listener->port() << "\n";
    std::cerr << "cawosched-serve: ready\n";
  }

  runStdioServe(server, std::cin, std::cout);
  // stdin is done. With a socket the daemon lives until a shutdown
  // request arrives (from either transport); stdio-only EOF means done.
  if (listener) server.waitUntilStopping();
  server.requestStop();
  server.drain();
  if (listener) listener->stop();

  if (!args.has("quiet")) {
    const ServeStats s = server.stats();
    std::cerr << "cawosched-serve: exiting — " << s.received
              << " requests, " << s.completed << " completed, " << s.failed
              << " failed, " << s.rejectedQueueFull << " rejected, "
              << s.timeouts << " timed out (cache: " << s.cache.hits
              << " hits / " << s.cache.misses << " misses)\n";
  }
  return 0;
}

/// Outcome of one solver run (or the reason it was skipped).
struct CliRun {
  std::string name;
  bool ran = false;
  std::string error;
  SolveResult result;
};

} // namespace

int main(int argc, char** argv) {
  using namespace cawo;
  try {
    if (argc > 1 && std::string(argv[1]) == "campaign")
      return runCampaignCommand(argc - 1, argv + 1);
    if (argc > 1 && std::string(argv[1]) == "replay")
      return runReplayCommand(argc - 1, argv + 1);
    if (argc > 1 && std::string(argv[1]) == "serve")
      return runServeCommand(argc - 1, argv + 1);
    if (argc > 1 && std::string(argv[1]) == "query")
      return runQueryCommand(argc - 1, argv + 1);
    if (argc > 1 && argv[1][0] != '-') {
      std::cerr << "error: unknown subcommand \"" << argv[1]
                << "\" for cawosched-cli (valid: campaign, query, replay, "
                   "serve)\n";
      return 2;
    }

    const CliArgs args(
        argc, argv,
        {"workflow", "profile", "algo", "variant", "deadline-factor",
         "nodes-per-type", "scenario", "intervals", "green-heft", "alpha",
         "block-size", "ls-radius", "ls-restarts", "ls-seed",
         "bnb-max-nodes", "bnb-time-limit", "threads", "list-algos",
         "list-scenarios", "out", "gantt", "seed", "help", "trace",
         "trace-summary"},
        "cawosched-cli");

    if (args.has("list-algos")) return listAlgos();
    if (args.has("list-scenarios")) return listScenarios();
    if (args.has("help") || !args.has("workflow")) {
      std::cout
          << "usage: cawosched-cli --workflow=flow.dot "
             "[--profile=green.csv] [--algo=name|glob|all]\n"
             "  [--threads=N] [--deadline-factor=2.0] [--nodes-per-type=2] "
             "[--scenario=SPEC]\n"
             "  [--intervals=24] [--alpha=0.5] [--block-size=3] "
             "[--ls-radius=10] [--ls-restarts=N]\n"
             "  [--bnb-max-nodes=N] [--bnb-time-limit=SEC] "
             "[--out=schedule.csv] [--gantt] [--seed=1]\n"
             "  cawosched-cli --list-algos | --list-scenarios\n"
             "subcommands:\n"
             "  campaign  run a declarative experiment campaign "
             "(see campaign --help)\n"
             "  query     filter/summarise a campaign result store "
             "(see query --help)\n"
             "  replay    online forecast-vs-actual execution replay "
             "(see replay --help,\n"
             "            replay --list-policies)\n"
             "  serve     long-running scheduler daemon speaking "
             "newline-delimited JSON\n"
             "            over stdin/stdout and a local socket "
             "(see serve --help)\n"
             "SPEC is any registered profile source, e.g. S1, duck, "
             "sine:period=24,amp=0.5,\ntrace:grid.csv,repeat=1 — see "
             "--list-scenarios.\n"
             "--trace=FILE writes a Perfetto-loadable Chrome trace of the "
             "solve;\n--trace-summary prints a per-span rollup to stderr.\n";
      return args.has("help") ? 0 : 2;
    }

    obs::TraceSession trace(args.getString("trace", ""),
                            args.has("trace-summary"));

    const TaskGraph workflow = readDotFile(args.getString("workflow", ""));
    const Platform cluster = Platform::scaled(
        static_cast<int>(args.getInt("nodes-per-type", 2)));
    const double factor = args.getDouble("deadline-factor", 2.0);
    const auto seed = static_cast<std::uint64_t>(args.getInt("seed", 1));

    // Fixed mapping and ordering from plain HEFT; carbon-aware mapping is
    // now a solver ("greenheft") rather than a CLI mode.
    const HeftResult mapped = runHeft(workflow, cluster);
    LinkPowerOptions linkPower;
    linkPower.seed = seed;
    const EnhancedGraph gc = EnhancedGraph::build(
        workflow, cluster, mapped.mapping, linkPower, &mapped.startTimes);
    const Time d = asapMakespan(gc);
    const auto deadline =
        static_cast<Time>(factor * static_cast<double>(d)) + 1;

    // Power profile covering the deadline.
    PowerProfile profile;
    if (args.has("profile")) {
      profile = readProfileCsvFile(args.getString("profile", ""));
      CAWO_REQUIRE(profile.horizon() >= deadline,
                   "profile horizon " + std::to_string(profile.horizon()) +
                       " does not cover the deadline " +
                       std::to_string(deadline) +
                       " — extend the CSV or lower --deadline-factor");
    } else {
      Power sumWork = 0;
      for (ProcId p = 0; p < gc.numProcs(); ++p) sumWork += gc.workPower(p);
      ProfileRequest preq;
      preq.horizon = deadline;
      preq.sumIdle = gc.totalIdlePower();
      preq.sumWork = sumWork;
      preq.numIntervals = static_cast<int>(args.getInt("intervals", 24));
      preq.seed = seed;
      profile = generateProfile(args.getString("scenario", "S1"), preq);
    }

    // Solver selection: --algo wins, legacy --variant / --green-heft map
    // onto it, default is the paper's strongest variant.
    std::string selection = args.getString("algo", "");
    if (selection.empty() && args.has("variant"))
      selection = args.getString("variant", "");
    if (selection.empty() && args.has("green-heft")) selection = "greenheft";
    if (selection.empty()) selection = "pressWR-LS";

    const SolverRegistry& registry = SolverRegistry::global();
    const std::vector<std::string> names = registry.select(selection);

    SolverOptions options;
    // Only forward --alpha when given, so bracketed selections like
    // --algo=greenheft[0.25] keep their inline parameter.
    if (args.has("alpha"))
      options.setDouble("alpha", args.getDouble("alpha", 0.5));
    options.setInt("block-size", args.getInt("block-size", 3));
    options.setInt("ls-radius", args.getInt("ls-radius", 10));
    if (args.has("ls-restarts"))
      options.setInt("ls-restarts", args.getInt("ls-restarts", 1));
    if (args.has("ls-seed"))
      options.setInt("ls-seed", args.getInt("ls-seed", 0));
    if (args.has("bnb-max-nodes"))
      options.setInt("max-nodes", args.getInt("bnb-max-nodes", 0));
    if (args.has("bnb-time-limit"))
      options.setDouble("time-limit-sec",
                        args.getDouble("bnb-time-limit", 120.0));
    options.setInt("link-seed", static_cast<std::int64_t>(seed));

    SolveRequest request;
    request.gc = &gc;
    request.profile = &profile;
    request.deadline = deadline;
    request.graph = &workflow;
    request.platform = &cluster;
    request.options = options;

    // Run the selection, optionally across threads (0 = hardware,
    // negative rejected). Solvers are independent and deterministic, so
    // the parallelism only affects wall time, never results. A
    // multi-solver selection fans out across solvers; a single solver
    // gets the budget as intra-solve threads instead (local-search
    // restart fan-out and wide candidate scans — equally deterministic).
    std::vector<CliRun> runs(names.size());
    const unsigned threads = threadsFromArgs(args, "threads", 1);
    if (names.size() == 1) request.options.setInt("threads", threads);
    parallelFor(names.size(), threads, [&](std::size_t i) {
      runs[i].name = names[i];
      try {
        runs[i].result = registry.create(names[i])->solve(request);
        runs[i].ran = true;
      } catch (const std::exception& e) {
        runs[i].error = e.what();
      }
    });

    // Reference cost for the ratio column: the selection's own ASAP run if
    // present, otherwise a dedicated baseline solve.
    const Cost asapCost = [&]() {
      for (const CliRun& run : runs)
        if (run.name == "ASAP" && run.ran) return run.result.cost;
      return registry.create("ASAP")->solve(request).cost;
    }();

    std::cout << "workflow      : " << workflow.numTasks() << " tasks, "
              << gc.numNodes() - workflow.numTasks()
              << " communication tasks\n"
              << "cluster       : " << cluster.numProcessors()
              << " compute nodes, " << gc.numLinks() << " active links\n"
              << "ASAP makespan : " << d << "  deadline: " << deadline
              << "\n\n";

    TextTable table(
        {"solver", "carbon cost", "vs ASAP", "wall ms", "optimal"});
    for (const CliRun& run : runs) {
      if (!run.ran) {
        table.addRow({run.name, "-", "-", "-", "skipped"});
        continue;
      }
      const SolveResult& r = run.result;
      std::string ratio = "-";
      if (asapCost > 0)
        ratio = formatFixed(
            static_cast<double>(r.cost) / static_cast<double>(asapCost), 3);
      table.addRow({run.name, std::to_string(r.cost), ratio,
                    formatFixed(r.wallMs, 2),
                    r.provedOptimal ? "proved" : "-"});
    }
    table.print(std::cout);
    for (const CliRun& run : runs)
      if (!run.ran)
        std::cout << "note: " << run.name << " skipped — " << run.error
                  << "\n";

    // Export the cheapest feasible schedule. A re-mapping solver's
    // schedule refers to its own enhanced graph and deadline, so the
    // export uses the run's effective graph.
    const CliRun* best = nullptr;
    for (const CliRun& run : runs) {
      if (!run.ran || !run.result.feasible) continue;
      if (best == nullptr || run.result.cost < best->result.cost) best = &run;
    }
    const std::string out = args.getString("out", "");
    if (!out.empty() || args.has("gantt"))
      CAWO_REQUIRE(best != nullptr,
                   "no feasible schedule to write — every selected solver "
                   "failed or was skipped");
    if (best != nullptr) {
      const EnhancedGraph& bestGc =
          best->result.remappedGc ? *best->result.remappedGc : gc;
      if (!out.empty()) {
        writeScheduleCsvFile(out, bestGc, best->result.schedule, &workflow);
        std::cout << "\nschedule of " << best->name << " written to " << out
                  << (best->result.remappedGc ? " (re-mapped graph)" : "")
                  << "\n";
      }
      if (args.has("gantt")) {
        std::cout << "\nGantt (" << best->name << "):\n";
        printGantt(std::cout, bestGc, best->result.schedule,
                   best->result.effectiveDeadline);
      }
    }
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
