// cawosched-cli — schedule a DOT workflow under a CSV green-power profile
// with any solver from the registry, or run a declarative experiment
// campaign. Full reference: docs/cli.md.
//
//   cawosched-cli --list-algos
//   cawosched-cli --list-scenarios
//   cawosched-cli --workflow=flow.dot [--profile=green.csv]
//                 [--algo=<name|glob|comma list|all>] [--threads=N]
//                 [--deadline-factor=2.0] [--nodes-per-type=2]
//                 [--scenario=SPEC] [--intervals=24] [--alpha=0.5]
//                 [--block-size=3] [--ls-radius=10] [--ls-restarts=N]
//                 [--bnb-max-nodes=N] [--bnb-time-limit=SEC]
//                 [--out=schedule.csv] [--gantt] [--seed=1]
//   cawosched-cli campaign [--campaign=<file>] [--out=results.json]
//                 [--summary] [--threads=N] [--quiet]
//                 [--<axis>=<comma list> ...]   (overrides the file)
//   cawosched-cli replay [--list-policies]
//                 [--family=atacseq] [--tasks=60] [--nodes-per-type=2]
//                 [--intervals=24] [--deadline-factor=2.0] [--seed=1]
//                 [--forecast=SPEC] [--actual=SPEC] [--policy=SPEC,...]
//                 [--algo=NAME] [--runtime-noise=A] [--runtime-seed=N]
//                 [--out=replay.json]
//   cawosched-cli serve [--port=N] [--workers=N] [--threads=N]
//                 [--queue-capacity=64] [--cache-capacity=16]
//                 [--default-timeout-ms=0] [--max-request-bytes=B]
//                 [--block-size=3] [--ls-radius=10] [--quiet]
//
// The workflow is HEFT-mapped onto a Table 1 cluster, the enhanced graph
// is built, and every selected solver runs against the profile. Without
// --profile a power profile is generated over exactly the deadline
// horizon from any registered profile-source spec (--scenario accepts
// "S1" … "S4", "sine:period=24,amp=0.5", "trace:grid.csv,repeat=1", … —
// see --list-scenarios and docs/formats.md). Per-solver diagnostics (carbon cost, wall time,
// optimality flag, ratio vs ASAP) come from the uniform SolveResult;
// optionally the best schedule is written as CSV or an ASCII Gantt chart.
//
// The campaign subcommand expands a cross-product of workflow families,
// sizes, cluster sizes, scenarios, deadline factors and seeds (see
// docs/formats.md for the campaign file format), runs every selected
// solver on every instance in parallel, prints an aggregate summary and
// optionally writes one JSON record per (instance, solver) cell.
//
// Legacy spellings are still accepted: --variant=<name> equals
// --algo=<name>, and --green-heft equals --algo=greenheft.

#include <algorithm>
#include <fstream>
#include <iostream>

#include "core/asap.hpp"
#include "core/carbon_cost.hpp"
#include "core/schedule_io.hpp"
#include "exp/campaign.hpp"
#include "exp/campaign_runner.hpp"
#include "exp/json.hpp"
#include "heft/heft.hpp"
#include "online/policy.hpp"
#include "online/replay.hpp"
#include "online/result_json.hpp"
#include "profile/profile_io.hpp"
#include "profile/profile_source.hpp"
#include "serve/listings.hpp"
#include "serve/server.hpp"
#include "serve/transport.hpp"
#include "sim/table.hpp"
#include "solver/registry.hpp"
#include "util/cli.hpp"
#include "util/parallel.hpp"
#include "util/require.hpp"
#include "util/strings.hpp"
#include "workflow/dot_io.hpp"

namespace {

using namespace cawo;

/// `cawosched-cli campaign ...` — run a declarative experiment campaign.
/// `argv` starts at the flags after the subcommand word.
int runCampaignCommand(int argc, const char* const* argv) {
  const CliArgs args(argc, argv,
                     {"campaign", "out", "summary", "quiet", "help", "name",
                      "families", "tasks", "bacass-tasks", "nodes-per-type",
                      "scenarios", "deadline-factors", "seeds", "intervals",
                      "algos", "threads", "block-size", "ls-radius", "online",
                      "actual", "policies", "runtime-noise"},
                     "cawosched-cli campaign");
  if (args.has("help")) {
    std::cout
        << "usage: cawosched-cli campaign [--campaign=<file>] "
           "[--out=results.json] [--summary]\n"
           "  [--threads=N] [--quiet] [--name=label] "
           "[--families=atacseq,eager,...]\n"
           "  [--tasks=a,b] [--bacass-tasks=N] [--nodes-per-type=a,b] "
           "[--scenarios=SPEC,...|all]\n"
           "  [--deadline-factors=1.5,2.0] [--seeds=a,b] [--intervals=J] "
           "[--algos=SEL]\n"
           "  [--block-size=3] [--ls-radius=10] [--online=1] "
           "[--actual=SPEC]\n"
           "  [--policies=SPEC,...] [--runtime-noise=A]\n"
           "With --online=1 every (instance, solver, policy) cell runs "
           "through the online\nreplay engine (see `cawosched-cli replay "
           "--help`).\n"
           "The campaign file holds the same keys as the flags "
           "(key = value lines or a JSON\nobject, see docs/formats.md); "
           "flags override the file. The scenarios axis takes\nany "
           "registered profile spec (--list-scenarios), e.g. "
           "S1,sine:period=24,amp=0.5,duck.\n";
    return 0;
  }

  CampaignSpec spec;
  if (args.has("campaign"))
    spec = parseCampaignFile(args.getString("campaign", ""));
  // Axis flags override the file: every flag funnels through the same
  // setCampaignKey vocabulary as the file keys.
  for (const char* key :
       {"name", "families", "tasks", "bacass-tasks", "nodes-per-type",
        "scenarios", "deadline-factors", "seeds", "intervals", "algos",
        "threads", "online", "actual", "policies", "runtime-noise"}) {
    if (args.has(key)) setCampaignKey(spec, key, args.getString(key, ""));
  }

  SolverOptions options;
  options.setInt("block-size", args.getInt("block-size", 3));
  options.setInt("ls-radius", args.getInt("ls-radius", 10));

  const bool quiet = args.has("quiet");
  const std::vector<std::string> solvers = campaignSolverNames(spec);
  if (!quiet) {
    std::cout << "campaign \"" << spec.name << "\": " << spec.cellCount()
              << " instances × " << solvers.size() << " solvers";
    if (spec.online)
      std::cout << " × " << spec.policies.size() << " policies (online)";
    std::cout << " ("
              << spec.cellCount() * solvers.size() * spec.policyCount()
              << " cells)\n";
  }

  const CampaignOutcome outcome = runCampaign(spec, options);

  if (!quiet || !args.has("out"))
    printCampaignSummary(std::cout, outcome, args.has("summary"));
  if (args.has("out")) {
    const std::string out = args.getString("out", "results.json");
    writeCampaignJsonFile(out, outcome);
    if (!quiet)
      std::cout << "\n" << outcome.records.size() << " JSON records written "
                << "to " << out << "\n";
  }
  return 0;
}

// The three discovery listings print the shared serve/listings rendering,
// so the CLI output and the serve daemon's `list` responses are the same
// bytes by construction.
int listPolicies() {
  std::cout << policyListing().text;
  return 0;
}

/// `cawosched-cli replay ...` — execute one instance through the online
/// replay engine: plan against the forecast, bill against the actual,
/// compare rescheduling policies. `argv` starts after the subcommand word.
int runReplayCommand(int argc, const char* const* argv) {
  const CliArgs args(argc, argv,
                     {"help", "list-policies", "family", "tasks",
                      "nodes-per-type", "intervals", "deadline-factor",
                      "seed", "forecast", "actual", "policy", "algo",
                      "runtime-noise", "runtime-seed", "block-size",
                      "ls-radius", "alpha", "out"},
                     "cawosched-cli replay");
  if (args.has("help")) {
    std::cout
        << "usage: cawosched-cli replay [--list-policies]\n"
           "  [--family=atacseq] [--tasks=60] [--nodes-per-type=2] "
           "[--intervals=24]\n"
           "  [--deadline-factor=2.0] [--seed=1] [--forecast=SPEC] "
           "[--actual=SPEC]\n"
           "  [--policy=SPEC,...] [--algo=NAME] [--runtime-noise=A] "
           "[--runtime-seed=N]\n"
           "  [--block-size=3] [--ls-radius=10] [--alpha=0.5] "
           "[--out=replay.json]\n"
           "The solver plans against --forecast (any profile spec; its "
           "+noise modifier is\nread as forecast error) and execution is "
           "billed against --actual (defaults to\nthe forecast's noisy "
           "counterpart). Each --policy runs one replay; see\n"
           "--list-policies and docs/cli.md for a walkthrough.\n";
    return 0;
  }
  if (args.has("list-policies")) return listPolicies();

  InstanceSpec spec;
  spec.family = familyFromName(args.getString("family", "atacseq"));
  spec.targetTasks = static_cast<int>(args.getInt("tasks", 60));
  spec.nodesPerType = static_cast<int>(args.getInt("nodes-per-type", 2));
  spec.numIntervals = static_cast<int>(args.getInt("intervals", 24));
  spec.deadlineFactor = args.getDouble("deadline-factor", 2.0);
  spec.seed = static_cast<std::uint64_t>(args.getInt("seed", 1));
  spec.scenario = args.getString("forecast", "S1");
  const std::string actualSpec = args.getString("actual", "");

  const std::vector<std::string> policies =
      splitSpecList(args.getString("policy", "static"));
  CAWO_REQUIRE(!policies.empty(), "no rescheduling policy given");
  for (const std::string& policy : policies)
    (void)ReschedulePolicyRegistry::global().resolve(policy);

  OnlineOptions opts;
  opts.solver = args.getString("algo", "pressWR-LS");
  opts.runtimeNoise = args.getDouble("runtime-noise", 0.0);
  opts.runtimeSeed =
      static_cast<std::uint64_t>(args.getInt("runtime-seed", 1));
  if (args.has("alpha"))
    opts.solverOptions.setDouble("alpha", args.getDouble("alpha", 0.5));
  opts.solverOptions.setInt("block-size", args.getInt("block-size", 3));
  opts.solverOptions.setInt("ls-radius", args.getInt("ls-radius", 10));

  const Instance inst = buildInstance(spec);
  std::cout << "instance      : " << inst.spec.label() << " ("
            << inst.gc.numNodes() << " enhanced nodes)\n"
            << "ASAP makespan : " << inst.asapMakespanD
            << "  deadline: " << inst.deadline << "\n"
            << "forecast      : " << spec.scenario << "\n"
            << "actual        : "
            << (actualSpec.empty() ? spec.scenario + " (noise pair)"
                                   : actualSpec)
            << "   runtime noise: " << opts.runtimeNoise << "\n"
            << "solver        : " << opts.solver << "\n\n";

  const std::vector<OnlineResult> results =
      replayOnlinePolicies(inst, actualSpec, opts, policies);

  TextTable table({"policy", "actual cost", "plan cost", "clairvoyant",
                   "regret", "re-solves", "resolve ms", "deadline"});
  for (const OnlineResult& r : results) {
    if (!r.ran) {
      table.addRow({r.policy, "-", "-", "-", "-", "-", "-", "failed"});
      continue;
    }
    table.addRow(
        {r.policy, std::to_string(r.actualCost),
         std::to_string(r.forecastCost),
         r.clairvoyantFeasible ? std::to_string(r.clairvoyantCost) : "-",
         r.clairvoyantFeasible ? std::to_string(r.regret) : "-",
         std::to_string(r.resolveCount) + " (" +
             std::to_string(r.resolveAccepted) + " ok)",
         formatFixed(r.resolveWallMs, 2), r.deadlineMet ? "met" : "MISSED"});
  }
  table.print(std::cout);
  for (const OnlineResult& r : results)
    if (!r.ran)
      std::cout << "note: " << r.policy << " failed — " << r.error << "\n";

  if (args.has("out")) {
    const std::string out = args.getString("out", "replay.json");
    std::ofstream file(out);
    CAWO_REQUIRE(file.good(), "cannot open result file for writing: " + out);
    JsonWriter w(file);
    w.beginObject();
    w.key("schema").value("cawosched-replay-v1");
    w.key("instance").value(inst.spec.label());
    w.key("solver").value(opts.solver);
    w.key("forecast").value(spec.scenario);
    if (actualSpec.empty()) w.key("actual").null();
    else w.key("actual").value(actualSpec);
    w.key("runtime_noise").value(opts.runtimeNoise);
    w.key("deadline").value(static_cast<std::int64_t>(inst.deadline));
    w.key("records");
    w.beginArray();
    for (const OnlineResult& r : results) {
      w.compactNext();
      w.beginObject();
      w.key("policy").value(r.policy);
      w.key("ran").value(r.ran);
      if (r.ran) writeOnlineResultFields(w, r);
      w.endObject();
    }
    w.endArray();
    w.endObject();
    file << '\n';
    CAWO_REQUIRE(file.good(), "failed writing result file: " + out);
    std::cout << "\nreplay records written to " << out << "\n";
  }
  // A run where any replay failed must not read as success to scripts/CI.
  for (const OnlineResult& r : results)
    if (!r.ran) return 1;
  return 0;
}

int listAlgos() {
  std::cout << algoListing().text;
  return 0;
}

int listScenarios() {
  std::cout << scenarioListing().text;
  return 0;
}

/// `cawosched-cli serve ...` — the scheduler-as-a-service daemon: speak
/// `cawosched-serve-v1` newline-delimited JSON over stdin/stdout and,
/// with --port, a loopback TCP socket too. `argv` starts after the
/// subcommand word. See docs/cli.md for a walkthrough.
int runServeCommand(int argc, const char* const* argv) {
  const CliArgs args(argc, argv,
                     {"help", "port", "workers", "threads",
                      "queue-capacity", "cache-capacity",
                      "default-timeout-ms", "max-request-bytes",
                      "block-size", "ls-radius", "quiet"},
                     "cawosched-cli serve");
  if (args.has("help")) {
    std::cout
        << "usage: cawosched-cli serve [--port=N] [--workers=N] "
           "[--threads=N]\n"
           "  [--queue-capacity=64] [--cache-capacity=16] "
           "[--default-timeout-ms=0]\n"
           "  [--max-request-bytes=1048576] [--block-size=3] "
           "[--ls-radius=10] [--quiet]\n"
           "--workers sizes the request pool (0 = hardware); --threads "
           "sets the default\nintra-solve thread budget per request "
           "(0 = hardware; results never change).\n"
           "Long-running scheduler daemon: one JSON request per line on "
           "stdin, one JSON\nresponse per line on stdout "
           "(cawosched-serve-v1 — kinds: solve, replay, list,\nstats, "
           "shutdown; see docs/formats.md). With --port the same protocol "
           "is also\nserved on 127.0.0.1:N (0 = ephemeral; the bound port "
           "is announced on stderr).\nThe daemon exits on a shutdown "
           "request, or on stdin EOF when no --port is\ngiven. Repeated "
           "instances hit an LRU SolveContext cache (watch the `stats`\n"
           "request's cache_hits). Diagnostics go to stderr; stdout "
           "carries protocol\nbytes only.\n";
    return 0;
  }

  ServeOptions options;
  options.workers = static_cast<unsigned>(args.getInt("workers", 0));
  options.queueCapacity =
      static_cast<std::size_t>(args.getInt("queue-capacity", 64));
  options.cacheCapacity =
      static_cast<std::size_t>(args.getInt("cache-capacity", 16));
  options.defaultTimeoutMs = args.getInt("default-timeout-ms", 0);
  options.maxRequestBytes =
      static_cast<std::size_t>(args.getInt("max-request-bytes", 1 << 20));
  options.solverDefaults.setInt("block-size", args.getInt("block-size", 3));
  options.solverDefaults.setInt("ls-radius", args.getInt("ls-radius", 10));
  if (args.has("threads"))
    options.solverDefaults.setInt("threads",
                                  threadsFromArgs(args, "threads", 1));

  ServeServer server(options);
  std::unique_ptr<TcpServeListener> listener;
  if (args.has("port"))
    listener = std::make_unique<TcpServeListener>(
        server, static_cast<std::uint16_t>(args.getInt("port", 0)));

  // Everything human goes to stderr — stdout is protocol bytes only.
  if (!args.has("quiet")) {
    std::cerr << "cawosched-serve: " << server.stats().workers
              << " workers, queue capacity " << options.queueCapacity
              << ", context cache " << options.cacheCapacity << "\n";
    if (listener)
      std::cerr << "cawosched-serve: listening on 127.0.0.1:"
                << listener->port() << "\n";
    std::cerr << "cawosched-serve: ready\n";
  }

  runStdioServe(server, std::cin, std::cout);
  // stdin is done. With a socket the daemon lives until a shutdown
  // request arrives (from either transport); stdio-only EOF means done.
  if (listener) server.waitUntilStopping();
  server.requestStop();
  server.drain();
  if (listener) listener->stop();

  if (!args.has("quiet")) {
    const ServeStats s = server.stats();
    std::cerr << "cawosched-serve: exiting — " << s.received
              << " requests, " << s.completed << " completed, " << s.failed
              << " failed, " << s.rejectedQueueFull << " rejected, "
              << s.timeouts << " timed out (cache: " << s.cache.hits
              << " hits / " << s.cache.misses << " misses)\n";
  }
  return 0;
}

/// Outcome of one solver run (or the reason it was skipped).
struct CliRun {
  std::string name;
  bool ran = false;
  std::string error;
  SolveResult result;
};

} // namespace

int main(int argc, char** argv) {
  using namespace cawo;
  try {
    if (argc > 1 && std::string(argv[1]) == "campaign")
      return runCampaignCommand(argc - 1, argv + 1);
    if (argc > 1 && std::string(argv[1]) == "replay")
      return runReplayCommand(argc - 1, argv + 1);
    if (argc > 1 && std::string(argv[1]) == "serve")
      return runServeCommand(argc - 1, argv + 1);
    if (argc > 1 && argv[1][0] != '-') {
      std::cerr << "error: unknown subcommand \"" << argv[1]
                << "\" for cawosched-cli (valid: campaign, replay, "
                   "serve)\n";
      return 2;
    }

    const CliArgs args(
        argc, argv,
        {"workflow", "profile", "algo", "variant", "deadline-factor",
         "nodes-per-type", "scenario", "intervals", "green-heft", "alpha",
         "block-size", "ls-radius", "ls-restarts", "ls-seed",
         "bnb-max-nodes", "bnb-time-limit", "threads", "list-algos",
         "list-scenarios", "out", "gantt", "seed", "help"},
        "cawosched-cli");

    if (args.has("list-algos")) return listAlgos();
    if (args.has("list-scenarios")) return listScenarios();
    if (args.has("help") || !args.has("workflow")) {
      std::cout
          << "usage: cawosched-cli --workflow=flow.dot "
             "[--profile=green.csv] [--algo=name|glob|all]\n"
             "  [--threads=N] [--deadline-factor=2.0] [--nodes-per-type=2] "
             "[--scenario=SPEC]\n"
             "  [--intervals=24] [--alpha=0.5] [--block-size=3] "
             "[--ls-radius=10] [--ls-restarts=N]\n"
             "  [--bnb-max-nodes=N] [--bnb-time-limit=SEC] "
             "[--out=schedule.csv] [--gantt] [--seed=1]\n"
             "  cawosched-cli --list-algos | --list-scenarios\n"
             "subcommands:\n"
             "  campaign  run a declarative experiment campaign "
             "(see campaign --help)\n"
             "  replay    online forecast-vs-actual execution replay "
             "(see replay --help,\n"
             "            replay --list-policies)\n"
             "  serve     long-running scheduler daemon speaking "
             "newline-delimited JSON\n"
             "            over stdin/stdout and a local socket "
             "(see serve --help)\n"
             "SPEC is any registered profile source, e.g. S1, duck, "
             "sine:period=24,amp=0.5,\ntrace:grid.csv,repeat=1 — see "
             "--list-scenarios.\n";
      return args.has("help") ? 0 : 2;
    }

    const TaskGraph workflow = readDotFile(args.getString("workflow", ""));
    const Platform cluster = Platform::scaled(
        static_cast<int>(args.getInt("nodes-per-type", 2)));
    const double factor = args.getDouble("deadline-factor", 2.0);
    const auto seed = static_cast<std::uint64_t>(args.getInt("seed", 1));

    // Fixed mapping and ordering from plain HEFT; carbon-aware mapping is
    // now a solver ("greenheft") rather than a CLI mode.
    const HeftResult mapped = runHeft(workflow, cluster);
    LinkPowerOptions linkPower;
    linkPower.seed = seed;
    const EnhancedGraph gc = EnhancedGraph::build(
        workflow, cluster, mapped.mapping, linkPower, &mapped.startTimes);
    const Time d = asapMakespan(gc);
    const auto deadline =
        static_cast<Time>(factor * static_cast<double>(d)) + 1;

    // Power profile covering the deadline.
    PowerProfile profile;
    if (args.has("profile")) {
      profile = readProfileCsvFile(args.getString("profile", ""));
      CAWO_REQUIRE(profile.horizon() >= deadline,
                   "profile horizon " + std::to_string(profile.horizon()) +
                       " does not cover the deadline " +
                       std::to_string(deadline) +
                       " — extend the CSV or lower --deadline-factor");
    } else {
      Power sumWork = 0;
      for (ProcId p = 0; p < gc.numProcs(); ++p) sumWork += gc.workPower(p);
      ProfileRequest preq;
      preq.horizon = deadline;
      preq.sumIdle = gc.totalIdlePower();
      preq.sumWork = sumWork;
      preq.numIntervals = static_cast<int>(args.getInt("intervals", 24));
      preq.seed = seed;
      profile = generateProfile(args.getString("scenario", "S1"), preq);
    }

    // Solver selection: --algo wins, legacy --variant / --green-heft map
    // onto it, default is the paper's strongest variant.
    std::string selection = args.getString("algo", "");
    if (selection.empty() && args.has("variant"))
      selection = args.getString("variant", "");
    if (selection.empty() && args.has("green-heft")) selection = "greenheft";
    if (selection.empty()) selection = "pressWR-LS";

    const SolverRegistry& registry = SolverRegistry::global();
    const std::vector<std::string> names = registry.select(selection);

    SolverOptions options;
    // Only forward --alpha when given, so bracketed selections like
    // --algo=greenheft[0.25] keep their inline parameter.
    if (args.has("alpha"))
      options.setDouble("alpha", args.getDouble("alpha", 0.5));
    options.setInt("block-size", args.getInt("block-size", 3));
    options.setInt("ls-radius", args.getInt("ls-radius", 10));
    if (args.has("ls-restarts"))
      options.setInt("ls-restarts", args.getInt("ls-restarts", 1));
    if (args.has("ls-seed"))
      options.setInt("ls-seed", args.getInt("ls-seed", 0));
    if (args.has("bnb-max-nodes"))
      options.setInt("max-nodes", args.getInt("bnb-max-nodes", 0));
    if (args.has("bnb-time-limit"))
      options.setDouble("time-limit-sec",
                        args.getDouble("bnb-time-limit", 120.0));
    options.setInt("link-seed", static_cast<std::int64_t>(seed));

    SolveRequest request;
    request.gc = &gc;
    request.profile = &profile;
    request.deadline = deadline;
    request.graph = &workflow;
    request.platform = &cluster;
    request.options = options;

    // Run the selection, optionally across threads (0 = hardware,
    // negative rejected). Solvers are independent and deterministic, so
    // the parallelism only affects wall time, never results. A
    // multi-solver selection fans out across solvers; a single solver
    // gets the budget as intra-solve threads instead (local-search
    // restart fan-out and wide candidate scans — equally deterministic).
    std::vector<CliRun> runs(names.size());
    const unsigned threads = threadsFromArgs(args, "threads", 1);
    if (names.size() == 1) request.options.setInt("threads", threads);
    parallelFor(names.size(), threads, [&](std::size_t i) {
      runs[i].name = names[i];
      try {
        runs[i].result = registry.create(names[i])->solve(request);
        runs[i].ran = true;
      } catch (const std::exception& e) {
        runs[i].error = e.what();
      }
    });

    // Reference cost for the ratio column: the selection's own ASAP run if
    // present, otherwise a dedicated baseline solve.
    const Cost asapCost = [&]() {
      for (const CliRun& run : runs)
        if (run.name == "ASAP" && run.ran) return run.result.cost;
      return registry.create("ASAP")->solve(request).cost;
    }();

    std::cout << "workflow      : " << workflow.numTasks() << " tasks, "
              << gc.numNodes() - workflow.numTasks()
              << " communication tasks\n"
              << "cluster       : " << cluster.numProcessors()
              << " compute nodes, " << gc.numLinks() << " active links\n"
              << "ASAP makespan : " << d << "  deadline: " << deadline
              << "\n\n";

    TextTable table(
        {"solver", "carbon cost", "vs ASAP", "wall ms", "optimal"});
    for (const CliRun& run : runs) {
      if (!run.ran) {
        table.addRow({run.name, "-", "-", "-", "skipped"});
        continue;
      }
      const SolveResult& r = run.result;
      std::string ratio = "-";
      if (asapCost > 0)
        ratio = formatFixed(
            static_cast<double>(r.cost) / static_cast<double>(asapCost), 3);
      table.addRow({run.name, std::to_string(r.cost), ratio,
                    formatFixed(r.wallMs, 2),
                    r.provedOptimal ? "proved" : "-"});
    }
    table.print(std::cout);
    for (const CliRun& run : runs)
      if (!run.ran)
        std::cout << "note: " << run.name << " skipped — " << run.error
                  << "\n";

    // Export the cheapest feasible schedule. A re-mapping solver's
    // schedule refers to its own enhanced graph and deadline, so the
    // export uses the run's effective graph.
    const CliRun* best = nullptr;
    for (const CliRun& run : runs) {
      if (!run.ran || !run.result.feasible) continue;
      if (best == nullptr || run.result.cost < best->result.cost) best = &run;
    }
    const std::string out = args.getString("out", "");
    if (!out.empty() || args.has("gantt"))
      CAWO_REQUIRE(best != nullptr,
                   "no feasible schedule to write — every selected solver "
                   "failed or was skipped");
    if (best != nullptr) {
      const EnhancedGraph& bestGc =
          best->result.remappedGc ? *best->result.remappedGc : gc;
      if (!out.empty()) {
        writeScheduleCsvFile(out, bestGc, best->result.schedule, &workflow);
        std::cout << "\nschedule of " << best->name << " written to " << out
                  << (best->result.remappedGc ? " (re-mapped graph)" : "")
                  << "\n";
      }
      if (args.has("gantt")) {
        std::cout << "\nGantt (" << best->name << "):\n";
        printGantt(std::cout, bestGc, best->result.schedule,
                   best->result.effectiveDeadline);
      }
    }
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
