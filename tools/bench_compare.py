#!/usr/bin/env python3
"""Compare google-benchmark JSON results against checked-in reference tables.

Usage:
    bench_compare.py --reference bench/reference BENCH_windows.json ...

For every result file, the tool looks up the reference table with the same
basename under --reference, matches kernels by benchmark name, and prints a
per-kernel delta table (positive = slower than the reference).

Report-only by default: the exit code is 0 no matter what the deltas say.
The reference tables were recorded on the single dev box documented in
bench/README.md; CI runners differ in absolute speed (and in load), so the
CI step treats this output as a trend report for humans, not a gate. Pass
--fail-above PCT to turn regressions beyond PCT percent into a non-zero
exit for same-machine A/B use.

Files that are not google-benchmark JSON (e.g. BENCH_serve.json, which the
load generator writes in its own schema) are skipped with a note.
"""

import argparse
import json
import os
import sys

UNIT_NS = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}


def load(path):
    """Return {kernel name: time in ns} for a google-benchmark JSON file,
    or None if the file uses some other schema."""
    with open(path) as f:
        doc = json.load(f)
    if not isinstance(doc, dict) or "benchmarks" not in doc:
        return None
    out = {}
    for b in doc["benchmarks"]:
        if b.get("run_type") == "aggregate":
            continue
        unit = UNIT_NS.get(b.get("time_unit", "ns"), 1.0)
        out[b["name"]] = float(b["real_time"]) * unit
    return out


def fmt(ns):
    for unit, scale in (("s", 1e9), ("ms", 1e6), ("us", 1e3)):
        if ns >= scale:
            return "%.3g %s" % (ns / scale, unit)
    return "%.3g ns" % ns


def main():
    ap = argparse.ArgumentParser(
        description="diff benchmark JSON against reference tables")
    ap.add_argument("--reference", required=True,
                    help="directory holding the reference BENCH_*.json files")
    ap.add_argument("--fail-above", type=float, default=None, metavar="PCT",
                    help="exit 1 if any kernel is more than PCT%% slower "
                         "than its reference (default: report only)")
    ap.add_argument("results", nargs="+", help="BENCH_*.json files to check")
    args = ap.parse_args()

    worst = 0.0
    compared = 0
    for path in args.results:
        name = os.path.basename(path)
        if not os.path.exists(path):
            print("%s: missing, skipped" % name)
            continue
        new = load(path)
        if new is None:
            print("%s: not google-benchmark JSON, skipped" % name)
            continue
        ref_path = os.path.join(args.reference, name)
        if not os.path.exists(ref_path):
            print("%s: no reference table at %s, skipped" % (name, ref_path))
            continue
        ref = load(ref_path)

        print()
        print("%s  (reference: %s)" % (name, ref_path))
        print("  %-52s %>10s %>10s %>9s".replace("%>", "%") %
              ("kernel", "ref", "new", "delta"))
        for kernel, ns_new in new.items():
            if kernel not in ref:
                print("  %-52s %10s %10s   (new kernel)" %
                      (kernel, "-", fmt(ns_new)))
                continue
            ns_ref = ref[kernel]
            delta = (ns_new / ns_ref - 1.0) * 100.0
            worst = max(worst, delta)
            compared += 1
            tag = ""
            if delta >= 10.0:
                tag = "  <-- slower"
            elif delta <= -10.0:
                tag = "  --> faster"
            print("  %-52s %10s %10s %+8.1f%%%s" %
                  (kernel, fmt(ns_ref), fmt(ns_new), delta, tag))
        for kernel in ref:
            if kernel not in new:
                print("  %-52s   (in reference, absent from this run)" %
                      kernel)

    print()
    print("compared %d kernels; worst delta %+.1f%%" % (compared, worst))
    if args.fail_above is not None and worst > args.fail_above:
        print("FAIL: exceeds --fail-above %.1f%%" % args.fail_above)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
